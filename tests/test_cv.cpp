// Unit tests for the synthetic CV stack: detector, Kalman filter, tracker,
// persistence estimation, tuning harness.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "cv/detector.hpp"
#include "cv/kalman.hpp"
#include "cv/persistence.hpp"
#include "cv/tracker.hpp"
#include "cv/tuning.hpp"
#include "sim/scenarios.hpp"

namespace privid::cv {
namespace {

sim::Scene crossing_scene(int n_entities = 3) {
  VideoMeta m;
  m.camera_id = "t";
  m.fps = 10;
  m.extent = {0, 120};
  sim::Scene s(m);
  for (int i = 0; i < n_entities; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.0);
    e.appearance_feature[static_cast<std::size_t>(i) % 8] = 1.0;
    double y = 100.0 + 150.0 * i;
    e.appearances.push_back(sim::Trajectory::linear(
        5.0 + 10 * i, 45.0 + 10 * i, Box{0, y, 40, 80}, Box{1200, y, 40, 80}));
    s.add_entity(e);
  }
  return s;
}

// ------------------------------------------------------------ Detector

TEST(Detector, DeterministicPerFrame) {
  auto scene = crossing_scene();
  Detector d(DetectorConfig{}, 99);
  auto a = d.detect(scene, 20.0, 200);
  auto b = d.detect(scene, 20.0, 200);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].truth_id, b[i].truth_id);
    EXPECT_DOUBLE_EQ(a[i].box.x, b[i].box.x);
  }
}

TEST(Detector, DetectProbabilityShape) {
  DetectorConfig cfg;
  Detector d(cfg, 1);
  // Bigger objects are easier.
  EXPECT_GT(d.detect_probability(5000, 1.0), d.detect_probability(500, 1.0));
  // Masked-out objects are undetectable.
  EXPECT_DOUBLE_EQ(d.detect_probability(5000, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.detect_probability(0, 1.0), 0.0);
  // Clamped to [min, max].
  EXPECT_LE(d.detect_probability(1e9, 1.0), cfg.max_detect_prob);
  EXPECT_GE(d.detect_probability(700, 1.0), cfg.min_detect_prob);
}

TEST(Detector, MissesSomeFrames) {
  auto scene = crossing_scene(1);
  DetectorConfig cfg;
  cfg.base_detect_prob = 0.5;
  Detector d(cfg, 7);
  int detected = 0, frames = 0;
  for (double t = 6; t < 44; t += 0.1) {
    ++frames;
    auto dets = d.detect(scene, t, scene.meta().frame_at(t));
    for (const auto& det : dets) {
      if (det.truth_id == 1) {
        ++detected;
        break;
      }
    }
  }
  // Some but not all frames hit.
  EXPECT_GT(detected, frames / 5);
  EXPECT_LT(detected, frames);
}

TEST(Detector, MaskSuppressesDetections) {
  auto scene = crossing_scene(1);
  Detector d(DetectorConfig{}, 7);
  Mask mask(1280, 720, 64, 36);
  mask.mask_box(Box{0, 0, 1280, 720});  // everything
  for (double t = 6; t < 44; t += 1.0) {
    auto dets = d.detect(scene, t, scene.meta().frame_at(t), &mask);
    for (const auto& det : dets) EXPECT_EQ(det.truth_id, -1);
  }
}

TEST(Detector, CarriesAttributes) {
  VideoMeta m;
  m.fps = 10;
  m.extent = {0, 100};
  sim::Scene s(m);
  sim::Entity car;
  car.id = 5;
  car.cls = sim::EntityClass::kCar;
  car.plate = "ABC-123";
  car.color = "RED";
  car.appearance_feature.assign(8, 0.5);
  car.appearances.push_back(sim::Trajectory::stationary(0, 100, Box{100, 100, 80, 50}));
  s.add_entity(car);
  DetectorConfig cfg;
  cfg.base_detect_prob = 0.98;
  Detector d(cfg, 3);
  bool saw = false;
  for (double t = 1; t < 50 && !saw; t += 1) {
    for (const auto& det : d.detect(s, t, s.meta().frame_at(t))) {
      if (det.truth_id == 5) {
        EXPECT_EQ(det.plate, "ABC-123");
        EXPECT_EQ(det.color, "RED");
        saw = true;
      }
    }
  }
  EXPECT_TRUE(saw);
}

TEST(Detector, Validation) {
  EXPECT_THROW(Detector(DetectorConfig{.base_detect_prob = 1.5}, 1),
               ArgumentError);
  DetectorConfig bad;
  bad.size_ref_area = 0;
  EXPECT_THROW(Detector(bad, 1), ArgumentError);
}

TEST(Detector, NmsSuppressesOverlappingObjects) {
  // Two entities fully overlapping: only one detection survives NMS.
  VideoMeta m;
  m.fps = 10;
  m.extent = {0, 100};
  sim::Scene s(m);
  for (int i = 0; i < 2; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.appearance_feature.assign(8, 0.1 * (i + 1));
    e.appearances.push_back(
        sim::Trajectory::stationary(0, 100, Box{500, 300, 50, 90}));
    s.add_entity(e);
  }
  DetectorConfig cfg;
  cfg.base_detect_prob = 0.98;
  cfg.false_positives_per_frame = 0;
  cfg.box_jitter_px = 0.5;
  Detector d(cfg, 5);
  int doubles = 0, frames = 0;
  for (double t = 1; t < 50; t += 1) {
    auto dets = d.detect(s, t, s.meta().frame_at(t));
    ++frames;
    if (dets.size() > 1) ++doubles;
  }
  EXPECT_LT(doubles, frames / 10);  // overlap almost always suppressed
}

TEST(Detector, NmsDisabledKeepsBoth) {
  VideoMeta m;
  m.fps = 10;
  m.extent = {0, 100};
  sim::Scene s(m);
  for (int i = 0; i < 2; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.appearance_feature.assign(8, 0.1);
    e.appearances.push_back(
        sim::Trajectory::stationary(0, 100, Box{500, 300, 50, 90}));
    s.add_entity(e);
  }
  DetectorConfig cfg;
  cfg.base_detect_prob = 0.98;
  cfg.false_positives_per_frame = 0;
  cfg.nms_iou = 2.0;  // disabled
  Detector d(cfg, 5);
  bool saw_both = false;
  for (double t = 1; t < 50 && !saw_both; t += 1) {
    saw_both = d.detect(s, t, s.meta().frame_at(t)).size() == 2;
  }
  EXPECT_TRUE(saw_both);
}

TEST(Tracker, FastSmallObjectStaysOneTrack) {
  // Regression: at 10 fps a fast object moves more than its own width per
  // frame; the centre-distance gate must keep it a single track despite
  // detector misses.
  VideoMeta m;
  m.fps = 10;
  m.extent = {0, 60};
  sim::Scene s(m);
  sim::Entity e;
  e.id = 1;
  e.appearance_feature.assign(8, 0.5);
  // 1280 px in 10 s = 128 px/s with a 20 px wide box.
  e.appearances.push_back(sim::Trajectory::linear(
      5, 15, Box{0, 300, 20, 45}, Box{1260, 300, 20, 45}));
  s.add_entity(e);
  DetectorConfig cfg;
  cfg.base_detect_prob = 0.55;  // misses ~half the frames
  cfg.false_positives_per_frame = 0;
  Detector det(cfg, 9);
  Tracker tr(TrackerConfig::sort(20, 2, 0.1));
  for (double t = 0; t < 20; t += 0.1) {
    tr.step(t, det.detect(s, t, s.meta().frame_at(t)));
  }
  EXPECT_LE(tr.take_tracks().size(), 2u);
}

// -------------------------------------------------------------- Kalman

TEST(Kalman, ConvergesToConstantVelocity) {
  Box b0{100, 100, 20, 20};
  KalmanBox kf(b0, 0.0);
  // Feed measurements moving +10 px/s in x.
  for (int i = 1; i <= 30; ++i) {
    double t = i * 0.1;
    kf.update(Box{100 + 10 * t, 100, 20, 20}, t);
  }
  EXPECT_NEAR(kf.vx(), 10.0, 2.0);
  EXPECT_NEAR(kf.vy(), 0.0, 1.0);
  // Prediction extrapolates: last measurement centre was 110 + 10*3 = 140,
  // one more second at ~10 px/s puts it near 150.
  kf.predict(4.0);
  EXPECT_NEAR(kf.cx(), 150.0, 10.0);
}

TEST(Kalman, UpdateReducesUncertainty) {
  KalmanBox kf(Box{0, 0, 10, 10}, 0.0);
  double before = kf.position_variance();
  kf.update(Box{0, 0, 10, 10}, 0.1);
  EXPECT_LT(kf.position_variance(), before);
}

TEST(Kalman, StateBoxTracksSize) {
  KalmanBox kf(Box{0, 0, 10, 10}, 0.0);
  for (int i = 1; i <= 20; ++i) {
    kf.update(Box{0, 0, 30, 30}, i * 0.1);
  }
  EXPECT_NEAR(kf.state_box().w, 30.0, 2.0);
}

// ------------------------------------------------------------- Tracker

std::vector<Detection> det_at(double x, double y, int truth,
                              std::vector<double> feat = {}) {
  Detection d;
  d.box = Box{x, y, 40, 80};
  d.truth_id = truth;
  d.feature = feat.empty() ? std::vector<double>{1, 0, 0, 0} : feat;
  return {d};
}

TEST(Tracker, SingleTrackLifecycle) {
  Tracker tr(TrackerConfig::sort(5, 2, 0.1));
  for (int i = 0; i < 20; ++i) {
    tr.step(i * 0.1, det_at(100 + i * 2.0, 100, 1));
  }
  auto tracks = tr.take_tracks();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].dominant_truth, 1);
  EXPECT_NEAR(tracks[0].duration(), 1.9, 1e-9);
  EXPECT_EQ(tracks[0].hits, 20);
}

TEST(Tracker, UnconfirmedShortTracksDropped) {
  Tracker tr(TrackerConfig::sort(5, 5, 0.1));
  tr.step(0.0, det_at(100, 100, 1));
  tr.step(0.1, det_at(102, 100, 1));
  // Only 2 hits < n_init 5: not confirmed.
  EXPECT_TRUE(tr.take_tracks().empty());
}

TEST(Tracker, SurvivesMissedFrames) {
  Tracker tr(TrackerConfig::sort(10, 2, 0.1));
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 2) {
      tr.step(i * 0.1, std::vector<Detection>{});  // missed detection
    } else {
      tr.step(i * 0.1, det_at(100 + i * 2.0, 100, 1));
    }
  }
  auto tracks = tr.take_tracks();
  ASSERT_EQ(tracks.size(), 1u);  // one stitched track despite misses
}

TEST(Tracker, FragmentsWhenMaxAgeSmall) {
  Tracker tr(TrackerConfig::sort(1, 1, 0.1));
  for (int i = 0; i < 40; ++i) {
    if (i % 8 > 3) {
      tr.step(i * 0.1, std::vector<Detection>{});  // 4-frame gaps exceed max_age 1
    } else {
      tr.step(i * 0.1, det_at(100 + i * 2.0, 100, 1));
    }
  }
  EXPECT_GT(tr.take_tracks().size(), 1u);
}

TEST(Tracker, SeparatesDistantObjects) {
  Tracker tr(TrackerConfig::sort(5, 2, 0.1));
  for (int i = 0; i < 20; ++i) {
    auto a = det_at(100 + i * 2.0, 100, 1);
    auto b = det_at(100 + i * 2.0, 500, 2);
    a.push_back(b[0]);
    tr.step(i * 0.1, a);
  }
  auto tracks = tr.take_tracks();
  ASSERT_EQ(tracks.size(), 2u);
  std::set<sim::EntityId> ids{tracks[0].dominant_truth,
                              tracks[1].dominant_truth};
  EXPECT_TRUE(ids.count(1));
  EXPECT_TRUE(ids.count(2));
}

TEST(Tracker, AppearanceGateBlocksMismatchedFeatures) {
  // DeepSORT-style: two objects crossing paths with distinct appearance
  // features stay distinct tracks when the cosine gate is tight.
  TrackerConfig cfg = TrackerConfig::deepsort(0.2, 0.05, 10, 1);
  Tracker tr(cfg);
  std::vector<double> fa{1, 0, 0, 0}, fb{0, 1, 0, 0};
  for (int i = 0; i < 20; ++i) {
    auto a = det_at(100 + i * 10.0, 100, 1, fa);
    auto b = det_at(300 - i * 10.0, 100, 2, fb);
    a.push_back(b[0]);
    tr.step(i * 0.1, a);
  }
  auto tracks = tr.take_tracks();
  std::size_t switches = 0;
  for (const auto& rec : tracks) {
    if (rec.dominant_truth < 0) ++switches;
  }
  EXPECT_GE(tracks.size(), 2u);
}

TEST(Tracker, RejectsOutOfOrderFrames) {
  Tracker tr(TrackerConfig{});
  tr.step(1.0, std::vector<Detection>{});
  EXPECT_THROW(tr.step(0.5, std::vector<Detection>{}), ArgumentError);
  EXPECT_THROW(tr.step(1.0, std::vector<Detection>{}), ArgumentError);
  EXPECT_THROW(Tracker(TrackerConfig::sort(0, 1, 0.1)), ArgumentError);
}

// --------------------------------------------------------- Persistence

TEST(Persistence, GroundTruthDurations) {
  auto scene = crossing_scene(3);
  auto gt = ground_truth_durations(scene, {0, 120});
  EXPECT_EQ(gt.entity_count, 3u);
  EXPECT_EQ(gt.durations.size(), 3u);
  EXPECT_NEAR(gt.max_duration, 40.0, 0.5);
  // Clipped window shortens durations.
  auto clipped = ground_truth_durations(scene, {0, 25});
  EXPECT_NEAR(clipped.max_duration, 20.0, 0.5);
}

TEST(Persistence, EstimateConservativelyBoundsGT) {
  // The Table 1 claim: detector+tracker estimates the max duration at or
  // above the truth (tracker padding via max_age), despite missed frames.
  auto scenario = sim::make_campus(11, 0.5, 0.6);
  TimeInterval win{6 * 3600.0, 6 * 3600.0 + 600};
  auto gt = ground_truth_durations(scenario.scene, win);
  DetectorConfig det;
  det.base_detect_prob = 0.7;
  auto est = estimate_persistence(scenario.scene, win, det,
                                  TrackerConfig::sort(40, 2, 0.1), 5, nullptr,
                                  5.0);
  ASSERT_GT(est.track_durations.size(), 0u);
  EXPECT_GT(est.max_duration, 0.6 * gt.max_duration);
  EXPECT_GT(est.frame_miss_rate, 0.0);
  EXPECT_LT(est.frame_miss_rate, 1.0);
}

TEST(Persistence, PolicySuggestion) {
  PersistenceEstimate est;
  est.max_duration = 50;
  auto p = suggest_policy(est, 1.2, 2);
  EXPECT_DOUBLE_EQ(p.rho, 60.0);
  EXPECT_EQ(p.k, 2);
  EXPECT_THROW(suggest_policy(est, 0.5), ArgumentError);
}

// ------------------------------------------------------------- Tuning

TEST(Tuning, SortGridRanksBySimilarity) {
  auto scene = crossing_scene(4);
  SortGrid grid;
  grid.max_age = {5, 40};
  grid.n_init = {2};
  grid.iou_gate = {0.1, 0.3};
  auto results = tune_sort(scene, {0, 120}, DetectorConfig{}, grid, 3, 5.0);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].distance, results[i].distance);
  }
  EXPECT_FALSE(results[0].label.empty());
}

TEST(Tuning, DeepsortGridRuns) {
  auto scene = crossing_scene(3);
  DeepSortGrid grid;
  grid.cos = {0.5};
  grid.iou = {0.1};
  grid.age = {20};
  grid.n_init = {2, 3};
  auto results =
      tune_deepsort(scene, {0, 120}, DetectorConfig{}, grid, 3, 5.0);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GE(results[0].max_duration, 0.0);
}

}  // namespace
}  // namespace privid::cv
