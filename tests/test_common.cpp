// Unit tests for the common substrate: rng, time arithmetic, interval map,
// statistics helpers.
#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "common/interval_map.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timeutil.hpp"

namespace privid {
namespace {

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double x = r.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto x = r.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LaplaceZeroScaleIsPoint) {
  Rng r(7);
  EXPECT_DOUBLE_EQ(r.laplace(3.5, 0.0), 3.5);
}

TEST(Rng, LaplaceMeanAndScale) {
  Rng r(123);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(r.laplace(0.0, 2.0));
  // Mean ~ 0, variance ~ 2 b^2 = 8.
  EXPECT_NEAR(mean(xs), 0.0, 0.1);
  EXPECT_NEAR(variance(xs), 8.0, 0.5);
}

TEST(Rng, LaplaceMedianAtMu) {
  Rng r(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.laplace(5.0, 1.0));
  EXPECT_NEAR(median(xs), 5.0, 0.05);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(1);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniform() == c2.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, RejectsBadArguments) {
  Rng r(1);
  EXPECT_THROW(r.uniform(5, 3), ArgumentError);
  EXPECT_THROW(r.exponential(0), ArgumentError);
  EXPECT_THROW(r.laplace(0, -1), ArgumentError);
  EXPECT_THROW(r.poisson(-1), ArgumentError);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(1);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

// ------------------------------------------------------------- timeutil

TEST(TimeUtil, ExactFrameConversion) {
  EXPECT_EQ(to_frames_exact(0.5, 30), 15);
  EXPECT_EQ(to_frames_exact(5.0, 30), 150);
  EXPECT_THROW(to_frames_exact(0.25, 30), ArgumentError);  // 7.5 frames
}

TEST(TimeUtil, RoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(to_frames_exact(2.0, 25), 25), 2.0);
}

TEST(TimeUtil, IntervalOps) {
  TimeInterval a{0, 10}, b{5, 15}, c{20, 30};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_EQ(a.intersect(b), (TimeInterval{5, 10}));
  EXPECT_TRUE(a.intersect(c).empty());
  EXPECT_TRUE(a.contains(0));
  EXPECT_FALSE(a.contains(10));
}

TEST(TimeUtil, FormatClock) {
  EXPECT_EQ(format_clock(6 * 3600 + 90), "06:01:30");
  EXPECT_EQ(format_clock(25 * 3600), "01:00:00");  // wraps
}

TEST(TimeUtil, FormatDuration) {
  EXPECT_EQ(format_duration(5), "5s");
  EXPECT_EQ(format_duration(120), "2min");
  EXPECT_EQ(format_duration(7200), "2hr");
}

// --------------------------------------------------------- IntervalMap

TEST(IntervalMap, DefaultEverywhere) {
  IntervalMap m(1.5);
  EXPECT_DOUBLE_EQ(m.value_at(0), 1.5);
  EXPECT_DOUBLE_EQ(m.value_at(-1000), 1.5);
  EXPECT_DOUBLE_EQ(m.value_at(1 << 30), 1.5);
}

TEST(IntervalMap, AddAndLookup) {
  IntervalMap m;
  m.add(10, 20, 2.0);
  EXPECT_DOUBLE_EQ(m.value_at(9), 0.0);
  EXPECT_DOUBLE_EQ(m.value_at(10), 2.0);
  EXPECT_DOUBLE_EQ(m.value_at(19), 2.0);
  EXPECT_DOUBLE_EQ(m.value_at(20), 0.0);
}

TEST(IntervalMap, OverlappingAdds) {
  IntervalMap m;
  m.add(0, 10, 1.0);
  m.add(5, 15, 1.0);
  EXPECT_DOUBLE_EQ(m.value_at(2), 1.0);
  EXPECT_DOUBLE_EQ(m.value_at(7), 2.0);
  EXPECT_DOUBLE_EQ(m.value_at(12), 1.0);
  EXPECT_DOUBLE_EQ(m.max_over(0, 15), 2.0);
  EXPECT_DOUBLE_EQ(m.min_over(0, 15), 1.0);
  EXPECT_DOUBLE_EQ(m.min_over(6, 9), 2.0);
}

TEST(IntervalMap, SumOver) {
  IntervalMap m;
  m.add(0, 10, 1.0);
  m.add(5, 15, 2.0);
  // [0,5): 1, [5,10): 3, [10,15): 2
  EXPECT_DOUBLE_EQ(m.sum_over(0, 15), 5 * 1.0 + 5 * 3.0 + 5 * 2.0);
  EXPECT_DOUBLE_EQ(m.sum_over(20, 30), 0.0);
}

TEST(IntervalMap, AssignReplaces) {
  IntervalMap m;
  m.add(0, 100, 5.0);
  m.assign(40, 60, 1.0);
  EXPECT_DOUBLE_EQ(m.value_at(39), 5.0);
  EXPECT_DOUBLE_EQ(m.value_at(50), 1.0);
  EXPECT_DOUBLE_EQ(m.value_at(60), 5.0);
}

TEST(IntervalMap, CoalescesAdjacentEqual) {
  IntervalMap m;
  m.add(0, 10, 1.0);
  m.add(10, 20, 1.0);
  auto segs = m.segments();
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].lo, 0);
  EXPECT_EQ(segs[0].hi, 20);
  EXPECT_DOUBLE_EQ(segs[0].value, 1.0);
}

TEST(IntervalMap, CancellingAddRestoresDefault) {
  IntervalMap m;
  m.add(5, 15, 3.0);
  m.add(5, 15, -3.0);
  EXPECT_EQ(m.breakpoint_count(), 0u);
  EXPECT_TRUE(m.segments().empty());
}

TEST(IntervalMap, EmptyRangeIsNoop) {
  IntervalMap m;
  m.add(10, 10, 5.0);
  m.add(10, 5, 5.0);
  EXPECT_EQ(m.breakpoint_count(), 0u);
}

TEST(IntervalMap, ThrowsOnEmptyExtrema) {
  IntervalMap m;
  EXPECT_THROW(m.min_over(5, 5), ArgumentError);
  EXPECT_THROW(m.max_over(5, 4), ArgumentError);
}

// Property test: interval map agrees with a dense reference under random
// operation sequences.
class IntervalMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalMapProperty, MatchesDenseReference) {
  Rng rng(GetParam());
  constexpr std::int64_t kLo = 0, kHi = 200;
  IntervalMap m(0.5);
  std::vector<double> dense(kHi - kLo, 0.5);

  for (int op = 0; op < 200; ++op) {
    std::int64_t a = rng.uniform_int(kLo, kHi - 1);
    std::int64_t b = rng.uniform_int(kLo, kHi - 1);
    if (a > b) std::swap(a, b);
    ++b;
    double delta = rng.uniform(-2, 2);
    if (rng.bernoulli(0.2)) {
      m.assign(a, b, delta);
      for (std::int64_t k = a; k < b; ++k) dense[k] = delta;
    } else {
      m.add(a, b, delta);
      for (std::int64_t k = a; k < b; ++k) dense[k] += delta;
    }
  }
  for (std::int64_t k = kLo; k < kHi; ++k) {
    ASSERT_NEAR(m.value_at(k), dense[k], 1e-9) << "key " << k;
  }
  // Spot-check range queries.
  for (int q = 0; q < 50; ++q) {
    std::int64_t a = rng.uniform_int(kLo, kHi - 2);
    std::int64_t b = rng.uniform_int(a + 1, kHi - 1);
    double mn = dense[a], mx = dense[a], sum = 0;
    for (std::int64_t k = a; k < b; ++k) {
      mn = std::min(mn, dense[k]);
      mx = std::max(mx, dense[k]);
      sum += dense[k];
    }
    ASSERT_NEAR(m.min_over(a, b), mn, 1e-9);
    ASSERT_NEAR(m.max_over(a, b), mx, 1e-9);
    ASSERT_NEAR(m.sum_over(a, b), sum, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMapProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------------------------- stats

TEST(Stats, MeanVarianceStddev) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_THROW(median({}), ArgumentError);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 10.0);
}

TEST(Stats, Rmse) {
  EXPECT_DOUBLE_EQ(rmse({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_THROW(rmse({1}, {1, 2}), ArgumentError);
}

TEST(Stats, RelativeAccuracy) {
  EXPECT_DOUBLE_EQ(relative_accuracy(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(relative_accuracy(90, 100), 0.9);
  EXPECT_DOUBLE_EQ(relative_accuracy(300, 100), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(relative_accuracy(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(relative_accuracy(5, 0), 0.0);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0, 10, 5);
  h.add(0.5);
  h.add(9.5);
  h.add(100);   // clamped to last bin
  h.add(-5);    // clamped to first bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Stats, HistogramDistanceIdentical) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(histogram_distance(a, a, 10), 0.0);
}

TEST(Stats, HistogramDistanceDisjoint) {
  std::vector<double> a{0, 0.1, 0.2}, b{10, 10.1, 10.2};
  EXPECT_NEAR(histogram_distance(a, b, 10), 1.0, 1e-9);
}

}  // namespace
}  // namespace privid
