// Chunk-output cache tests: fingerprint framing, LRU eviction at the byte
// budget, hit/miss stats, epoch invalidation on mask re-registration and
// re-tuning, and the core guarantee — releases, sensitivities and
// budget-ledger charges are bit-identical with the cache off vs. shared
// (and per-query) at any thread count, on grouped, keyed and standing
// queries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fingerprint.hpp"
#include "engine/chunk_cache.hpp"
#include "engine/privid.hpp"
#include "engine/standing.hpp"
#include "sim/scenarios.hpp"
#include "table/slab_io.hpp"

namespace privid::engine {
namespace {

// This suite pins exact hit/miss/eviction counts, so CI's chaos replay
// (PRIVID_FAULTS) must not perturb it — the equivalence suites in
// test_fault.cpp are the ones that run armed. Static-init so it runs
// before the fault plane's lazy env read can ever happen.
const bool g_faults_cleared = [] {
  unsetenv("PRIVID_FAULTS");
  return true;
}();

// ------------------------------------------------------------ fixtures

// Deterministic scene: `n` people crossing one at a time, each visible for
// 10 s, one every 20 s starting at t = 5 (same shape as test_engine.cpp).
std::shared_ptr<sim::Scene> staircase_scene(int n) {
  VideoMeta m;
  m.camera_id = "cam";
  m.fps = 10;
  m.width = 1280;
  m.height = 720;
  m.extent = {0, 20.0 * n + 20};
  auto s = std::make_shared<sim::Scene>(m);
  for (int i = 0; i < n; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.1);
    double t0 = 5.0 + 20.0 * i;
    e.appearances.push_back(sim::Trajectory::linear(
        t0, t0 + 10, Box{0, 300, 60, 120}, Box{1200, 300, 60, 120}));
    s->add_entity(e);
  }
  return s;
}

Executable counting_exe() {
  return [](const ChunkView& view) {
    ExecOutput out;
    cv::DetectorConfig det;
    det.base_detect_prob = 0.98;
    det.false_positives_per_frame = 0;
    double mid = view.time().begin + view.time().duration() / 2;
    for (const auto& d : view.detect(det, mid)) {
      (void)d;
      out.rows.push_back({Value(1.0)});
    }
    out.simulated_runtime = 0.1;
    return out;
  };
}

// Emits one string-keyed row per chunk so keyed GROUP BY queries have
// something to group on; the parity key exercises per-chunk determinism.
Executable parity_exe() {
  return [](const ChunkView& view) {
    ExecOutput out;
    out.rows.push_back(
        {Value(view.chunk_index() % 2 == 0 ? "even" : "odd"), Value(1.0)});
    out.simulated_runtime = 0.1;
    return out;
  };
}

Privid make_system(int n_people = 5, double rho = 10, int k = 1,
                   double budget = 100, std::uint64_t noise_seed = 7) {
  // This suite pins cache modes and tiers programmatically — hit/miss
  // assertions and explicit attach_disk_tier calls must not be perturbed
  // by CI's env-driven cache replay (PRIVID_CACHE_DIR would auto-attach a
  // dir shared across every suite in the run).
  unsetenv("PRIVID_CACHE_DIR");
  unsetenv("PRIVID_CACHE_PRELOAD");
  Privid sys(noise_seed);
  auto scene = staircase_scene(n_people);
  CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 11;
  reg.policy = {rho, k};
  reg.epsilon_budget = budget;
  Mask top(1280, 720, 64, 36);
  top.mask_box(Box{0, 0, 1280, 120});
  reg.masks.emplace("top_strip", MaskEntry{top, {rho / 2, k}});
  sys.register_camera(std::move(reg));
  sys.register_executable("count", counting_exe());
  sys.register_executable("parity", parity_exe());
  return sys;
}

constexpr const char* kGroupedQuery =
    "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
    "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
    "WITH SCHEMA (seen:NUMBER=0) INTO t;"
    "SELECT COUNT(*) FROM t GROUP BY hour(chunk);";

constexpr const char* kKeyedQuery =
    "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
    "PROCESS c USING parity TIMEOUT 1 PRODUCING 1 ROWS "
    "WITH SCHEMA (side:STRING=\"even\", n:NUMBER=0) INTO t;"
    "SELECT side, COUNT(*) FROM t GROUP BY side WITH KEYS "
    "[\"even\", \"odd\"];";

void expect_releases_identical(const std::vector<Release>& a,
                               const std::vector<Release>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].group_key, b[i].group_key);
    EXPECT_EQ(a[i].value, b[i].value);  // bit-identical, not approximate
    EXPECT_EQ(a[i].raw, b[i].raw);
    EXPECT_EQ(a[i].sensitivity, b[i].sensitivity);
    EXPECT_EQ(a[i].epsilon, b[i].epsilon);
    EXPECT_EQ(a[i].argmax_key, b[i].argmax_key);
  }
}

Fingerprint key_of(std::uint64_t i) {
  FingerprintBuilder fp;
  fp.add(i);
  return fp.digest();
}

// A cached slab whose footprint is dominated by `payload` string bytes.
ColumnSlab slab_with_payload(std::size_t payload) {
  Schema schema({{"s", DType::kString, Value(std::string())}});
  ColumnSlab slab(schema);
  slab.append_string(0, std::string(payload, 'x'));
  slab.finish_row();
  return slab;
}

// -------------------------------------------------------- fingerprints

TEST(Fingerprint, FramingPreventsAliasing) {
  FingerprintBuilder ab_c, a_bc;
  ab_c.add(std::string("ab")).add(std::string("c"));
  a_bc.add(std::string("a")).add(std::string("bc"));
  EXPECT_FALSE(ab_c.digest() == a_bc.digest());

  // Same payload bits, different types.
  FingerprintBuilder as_u64, as_f64;
  as_u64.add(std::uint64_t{0});
  as_f64.add(0.0);
  EXPECT_FALSE(as_u64.digest() == as_f64.digest());
}

TEST(Fingerprint, OrderAndValueSensitive) {
  FingerprintBuilder ab, ba;
  ab.add(std::uint64_t{1}).add(std::uint64_t{2});
  ba.add(std::uint64_t{2}).add(std::uint64_t{1});
  EXPECT_FALSE(ab.digest() == ba.digest());
  EXPECT_EQ(key_of(42), key_of(42));
  EXPECT_FALSE(key_of(42) == key_of(43));
}

// -------------------------------------------------------- cache basics

TEST(ChunkCache, HitMissStats) {
  ChunkCache cache(1 << 20);
  ColumnSlab out;
  EXPECT_FALSE(cache.lookup(key_of(1), &out));
  cache.insert(key_of(1), slab_with_payload(16));
  EXPECT_TRUE(cache.lookup(key_of(1), &out));
  ASSERT_EQ(out.row_count(), 1u);
  EXPECT_EQ(out.string_at(0, 0), std::string(16, 'x'));

  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 16u);
}

TEST(ChunkCache, LruEvictionAtByteBudget) {
  // Budget sized for exactly two payload-1KiB entries.
  const std::size_t entry = ChunkCache::slab_bytes(slab_with_payload(1024));
  ChunkCache cache(2 * entry);
  cache.insert(key_of(1), slab_with_payload(1024));
  cache.insert(key_of(2), slab_with_payload(1024));
  ColumnSlab out;
  ASSERT_TRUE(cache.lookup(key_of(1), &out));  // 1 is now most recent
  cache.insert(key_of(3), slab_with_payload(1024));

  EXPECT_FALSE(cache.lookup(key_of(2), &out));  // LRU victim
  EXPECT_TRUE(cache.lookup(key_of(1), &out));
  EXPECT_TRUE(cache.lookup(key_of(3), &out));
  CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, 2 * entry);
}

TEST(ChunkCache, OversizeValueIsNotCached) {
  ChunkCache cache(64);
  cache.insert(key_of(1), slab_with_payload(4096));
  ColumnSlab out;
  EXPECT_FALSE(cache.lookup(key_of(1), &out));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ChunkCache, ShrinkingBudgetEvictsDown) {
  ChunkCache cache(1 << 20);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.insert(key_of(i), slab_with_payload(1024));
  }
  EXPECT_EQ(cache.stats().entries, 8u);
  cache.set_byte_budget(3 * ChunkCache::slab_bytes(slab_with_payload(1024)));
  EXPECT_LE(cache.stats().entries, 3u);
  EXPECT_GE(cache.stats().evictions, 5u);
  // The survivors are the most recently inserted.
  ColumnSlab out;
  EXPECT_TRUE(cache.lookup(key_of(7), &out));
  EXPECT_FALSE(cache.lookup(key_of(0), &out));
}

TEST(ChunkCache, ClearKeepsCounters) {
  ChunkCache cache(1 << 20);
  cache.insert(key_of(1), slab_with_payload(8));
  ColumnSlab out;
  EXPECT_TRUE(cache.lookup(key_of(1), &out));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);  // cumulative counters survive
  EXPECT_FALSE(cache.lookup(key_of(1), &out));
}

TEST(ChunkCache, EnvResolution) {
  EXPECT_EQ(resolve_cache_mode(CacheMode::kOff), CacheMode::kOff);
  EXPECT_EQ(resolve_cache_mode(CacheMode::kShared), CacheMode::kShared);
  EXPECT_EQ(resolve_cache_mode(CacheMode::kPerQuery), CacheMode::kPerQuery);
  // kDefault follows PRIVID_CACHE; with the variable unset it must be off.
  if (!std::getenv("PRIVID_CACHE")) {
    EXPECT_EQ(resolve_cache_mode(CacheMode::kDefault), CacheMode::kOff);
  }
}

// ------------------------------------------------- facade integration

TEST(ChunkCache, SharedModeHitsOnRepeatedQuery) {
  Privid sys = make_system();
  RunOptions opts;
  opts.cache = CacheMode::kShared;
  auto cold = sys.execute(kGroupedQuery, opts);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, 20u);  // 100 s / 5 s chunks
  auto warm = sys.execute(kGroupedQuery, opts);
  EXPECT_EQ(warm.cache.hits, 20u);
  EXPECT_EQ(warm.cache.misses, 0u);
  CacheStats s = sys.cache_stats();
  EXPECT_EQ(s.hits, 20u);
  EXPECT_EQ(s.misses, 20u);
  EXPECT_EQ(s.entries, 20u);
}

TEST(ChunkCache, PerQueryModeDeduplicatesWithinOneQuery) {
  // Two PROCESS statements over the same chunk set and executable: the
  // second is served from the per-query cache, and nothing leaks into the
  // facade's shared cache.
  constexpr const char* kTwoProcess =
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t1;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t2;"
      "SELECT COUNT(*) FROM t1; SELECT COUNT(*) FROM t2;";
  Privid cached = make_system();
  RunOptions opts;
  opts.reveal_raw = true;
  opts.cache = CacheMode::kPerQuery;
  auto result = cached.execute(kTwoProcess, opts);
  EXPECT_EQ(result.cache.misses, 20u);
  EXPECT_EQ(result.cache.hits, 20u);
  EXPECT_EQ(cached.cache_stats().entries, 0u);  // shared cache untouched

  Privid uncached = make_system();
  RunOptions off = opts;
  off.cache = CacheMode::kOff;
  expect_releases_identical(uncached.execute(kTwoProcess, off).releases,
                            result.releases);
}

// --------------------------------------------------- the core guarantee

// Releases (raw, sensitivity *and* noise), table rows and ledger charges
// must be byte-identical with the cache off vs. shared, cold and warm, at
// 1 and 4 and all-hardware threads, on grouped and keyed queries.
TEST(CacheEquivalence, BitIdenticalOffVsSharedAcrossThreads) {
  for (const char* query : {kGroupedQuery, kKeyedQuery}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                                std::size_t{0}}) {
      Privid off_sys = make_system();
      Privid shared_sys = make_system();
      RunOptions off;
      off.reveal_raw = true;
      off.num_threads = threads;
      off.cache = CacheMode::kOff;
      RunOptions shared = off;
      shared.cache = CacheMode::kShared;

      // Same query twice on each system: the second shared run is warm.
      auto off1 = off_sys.execute(query, off);
      auto off2 = off_sys.execute(query, off);
      auto shared1 = shared_sys.execute(query, shared);
      auto shared2 = shared_sys.execute(query, shared);
      EXPECT_GT(shared2.cache.hits, 0u);
      EXPECT_EQ(shared2.cache.misses, 0u);

      expect_releases_identical(off1.releases, shared1.releases);
      expect_releases_identical(off2.releases, shared2.releases);
      EXPECT_EQ(off1.table_rows, shared1.table_rows);
      EXPECT_EQ(off2.table_rows, shared2.table_rows);
      // Ledger charges are identical too: same remaining budget everywhere.
      for (FrameIndex f : {0, 250, 500, 999}) {
        EXPECT_EQ(off_sys.remaining_budget("cam", f),
                  shared_sys.remaining_budget("cam", f));
      }
    }
  }
}

TEST(CacheEquivalence, MaskedQueryIdenticalAndCached) {
  constexpr const char* kMasked =
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 WITH MASK top_strip "
      "INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t;";
  Privid off_sys = make_system();
  Privid shared_sys = make_system();
  RunOptions off;
  off.reveal_raw = true;
  off.cache = CacheMode::kOff;
  RunOptions shared = off;
  shared.cache = CacheMode::kShared;
  // Unmasked then masked: the mask id is part of the key, so the masked
  // run must not reuse unmasked rows.
  auto off_plain = off_sys.execute(kGroupedQuery, off);
  auto off_masked = off_sys.execute(kMasked, off);
  auto shared_plain = shared_sys.execute(kGroupedQuery, shared);
  auto shared_masked = shared_sys.execute(kMasked, shared);
  EXPECT_EQ(shared_masked.cache.hits, 0u);  // distinct key space
  expect_releases_identical(off_plain.releases, shared_plain.releases);
  expect_releases_identical(off_masked.releases, shared_masked.releases);
}

// ------------------------------------------------------- invalidation

TEST(CacheInvalidation, MaskReRegistrationBumpsEpoch) {
  constexpr const char* kMasked =
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 WITH MASK top_strip "
      "INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t;";
  Privid sys = make_system();
  RunOptions opts;
  opts.reveal_raw = true;
  opts.cache = CacheMode::kShared;
  auto before = sys.execute(kMasked, opts);
  EXPECT_GT(before.releases[0].raw, 0.0);  // people visible at y=300

  // Replace top_strip with a mask that blocks the whole frame: cached rows
  // for the old mask must not be served.
  Mask full(1280, 720, 64, 36);
  full.mask_box(Box{0, 0, 1280, 720});
  sys.register_mask("cam", "top_strip", MaskEntry{full, {5, 1}});
  auto after = sys.execute(kMasked, opts);
  EXPECT_EQ(after.cache.hits, 0u);  // epoch bumped -> all misses
  EXPECT_EQ(after.cache.misses, 20u);
  EXPECT_EQ(after.releases[0].raw, 0.0);  // fully masked: nothing seen

  // Unknown camera / bad policy are rejected.
  EXPECT_THROW(sys.register_mask("nope", "m", MaskEntry{full, {5, 1}}),
               LookupError);
  EXPECT_THROW(sys.register_mask("cam", "m", MaskEntry{full, {-1, 1}}),
               ArgumentError);
}

TEST(CacheInvalidation, RetuneCameraBumpsEpoch) {
  Privid sys = make_system();
  RunOptions opts;
  opts.cache = CacheMode::kShared;
  sys.execute(kGroupedQuery, opts);
  auto warm = sys.execute(kGroupedQuery, opts);
  EXPECT_EQ(warm.cache.hits, 20u);
  sys.retune_camera("cam", {12, 1});
  auto after = sys.execute(kGroupedQuery, opts);
  EXPECT_EQ(after.cache.hits, 0u);
  EXPECT_EQ(after.cache.misses, 20u);
  EXPECT_THROW(sys.retune_camera("nope", {5, 1}), LookupError);
}

TEST(CacheInvalidation, ExecutableReplacementBumpsVersion) {
  constexpr const char* kFlatCount =
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t;";
  Privid sys = make_system();
  RunOptions opts;
  opts.reveal_raw = true;
  opts.cache = CacheMode::kShared;
  auto before = sys.execute(kFlatCount, opts);
  ASSERT_EQ(before.releases.size(), 1u);
  EXPECT_GT(before.releases[0].raw, 0.0);
  // Replace "count" with an executable that reports nothing: the cached
  // rows of the old function must be unreachable under the new version.
  sys.register_executable("count", [](const ChunkView&) {
    ExecOutput out;
    out.simulated_runtime = 0.1;
    return out;
  });
  auto after = sys.execute(kFlatCount, opts);
  EXPECT_EQ(after.cache.hits, 0u);
  ASSERT_EQ(after.releases.size(), 1u);
  EXPECT_EQ(after.releases[0].raw, 0.0);
}

// ---------------------------------------------------- standing queries

constexpr const char* kStandingTemplate =
    "SPLIT cam BEGIN {BEGIN} END {END} BY TIME 5 STRIDE 0 INTO c;"
    "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
    "WITH SCHEMA (seen:NUMBER=0) INTO t;"
    "SELECT COUNT(*) FROM t;";

TEST(StandingCache, WarmReplayServesEveryChunkFromCache) {
  Privid sys = make_system(5, 10, 1, /*budget=*/50);
  StandingQuery::Spec spec;
  spec.query_template = kStandingTemplate;
  spec.period = 30;
  spec.opts.reveal_raw = true;
  spec.opts.cache = CacheMode::kShared;

  StandingQuery cold(&sys, spec);
  auto cold_releases = cold.advance(90);  // three periods, 6 chunks each
  ASSERT_EQ(cold_releases.size(), 3u);
  CacheStats after_cold = sys.cache_stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_EQ(after_cold.misses, 18u);

  // A second standing query over the same history (re-deployment replay)
  // pays zero PROCESS work: every chunk is served from the cache, and the
  // raw aggregates match the cold run exactly.
  StandingQuery warm(&sys, spec);
  auto warm_releases = warm.advance(90);
  ASSERT_EQ(warm_releases.size(), 3u);
  CacheStats after_warm = sys.cache_stats();
  EXPECT_EQ(after_warm.hits, 18u);
  EXPECT_EQ(after_warm.misses, 18u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(warm_releases[i].raw, cold_releases[i].raw);
    EXPECT_EQ(warm_releases[i].sensitivity, cold_releases[i].sensitivity);
  }
}

TEST(StandingCache, OffVsSharedStandingBitIdentical) {
  // Twin systems, same seed, same advance() sequence: one cached, one not.
  // Everything the analyst sees — noise included — must be bit-identical,
  // and so must the ledger.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Privid off_sys = make_system(5, 10, 1, 50);
    Privid shared_sys = make_system(5, 10, 1, 50);
    StandingQuery::Spec spec;
    spec.query_template = kStandingTemplate;
    spec.period = 30;
    spec.opts.reveal_raw = true;
    spec.opts.num_threads = threads;

    spec.opts.cache = CacheMode::kOff;
    StandingQuery off_q(&off_sys, spec);
    spec.opts.cache = CacheMode::kShared;
    StandingQuery shared_q(&shared_sys, spec);

    for (Seconds now : {30.0, 90.0}) {
      auto a = off_q.advance(now);
      auto b = shared_q.advance(now);
      expect_releases_identical(a, b);
    }
    for (FrameIndex f : {0, 450, 899}) {
      EXPECT_EQ(off_sys.remaining_budget("cam", f),
                shared_sys.remaining_budget("cam", f));
    }
  }
}

TEST(StandingCache, TemplateParseIsHoisted) {
  Privid sys = make_system(5, 10, 1, 50);
  StandingQuery::Spec spec;
  spec.query_template = kStandingTemplate;
  spec.period = 30;
  StandingQuery hoisted(&sys, spec);
  EXPECT_TRUE(hoisted.plan_hoisted());
  EXPECT_EQ(hoisted.advance(60).size(), 2u);
}

TEST(StandingCache, PlaceholderOutsideSplitFallsBackAndStaysCorrect) {
  // {END} also appears in a WHERE literal: the hoisted plan cannot model
  // that, so the per-period substitute-and-parse path must take over and
  // produce the same releases as an equivalent hand-substituted query.
  Privid sys = make_system(5, 10, 1, 50, /*noise_seed=*/21);
  StandingQuery::Spec spec;
  spec.query_template =
      "SPLIT cam BEGIN {BEGIN} END {END} BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t WHERE seen < {END};";
  spec.period = 30;
  spec.opts.reveal_raw = true;
  StandingQuery fallback(&sys, spec);
  EXPECT_FALSE(fallback.plan_hoisted());
  auto releases = fallback.advance(60);
  ASSERT_EQ(releases.size(), 2u);

  Privid ref = make_system(5, 10, 1, 50, /*noise_seed=*/21);
  RunOptions opts;
  opts.reveal_raw = true;
  auto r1 = ref.execute(substitute_window(spec.query_template, 0, 30), opts);
  auto r2 = ref.execute(substitute_window(spec.query_template, 30, 60), opts);
  EXPECT_EQ(releases[0].value, r1.releases[0].value);
  EXPECT_EQ(releases[1].value, r2.releases[0].value);
}

TEST(StandingCache, MalformedTemplateStillThrowsAtAdvance) {
  Privid sys = make_system(2);
  StandingQuery::Spec spec;
  spec.query_template = "{BEGIN} {END} not a query";
  spec.period = 10;
  StandingQuery q(&sys, spec);  // constructor must not throw
  EXPECT_FALSE(q.plan_hoisted());
  EXPECT_THROW(q.advance(10), Error);
}

// -------------------------------------------------------- disk tier

// A fresh cache directory under the test's working directory (ctest runs
// inside the build tree, so nothing leaks outside it).
std::filesystem::path fresh_cache_dir(const std::string& name) {
  auto dir = std::filesystem::current_path() / ("privid_cache_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::size_t slab_file_count(const std::filesystem::path& dir) {
  std::size_t n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".slab") ++n;
  }
  return n;
}

DiskTierConfig disk_config(const std::filesystem::path& dir,
                           std::size_t budget = 64u << 20) {
  DiskTierConfig config;
  config.dir = dir.string();
  config.byte_budget = budget;
  return config;
}

TEST(DiskTier, DemoteOnEvictAndPromoteOnMiss) {
  const auto dir = fresh_cache_dir("demote");
  const std::size_t entry = ChunkCache::slab_bytes(slab_with_payload(1024));
  ChunkCache cache(2 * entry);
  cache.attach_disk_tier(disk_config(dir));
  EXPECT_TRUE(cache.has_disk_tier());

  cache.insert(key_of(1), slab_with_payload(1024));
  cache.insert(key_of(2), slab_with_payload(1024));
  cache.insert(key_of(3), slab_with_payload(1024));  // evicts 1 -> disk
  CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.demotions, 1u);
  EXPECT_EQ(s.disk_entries, 1u);
  EXPECT_GT(s.disk_bytes, 0u);
  EXPECT_TRUE(
      std::filesystem::exists(ChunkCache::slab_path(dir.string(), key_of(1))));

  // A memory miss is served from disk and promoted back; the slab file
  // stays in place, so a later re-demotion is a free recency touch.
  ColumnSlab out;
  EXPECT_TRUE(cache.lookup(key_of(1), &out));
  EXPECT_EQ(out.string_at(0, 0), std::string(1024, 'x'));
  s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.corrupt_drops, 0u);
  EXPECT_TRUE(
      std::filesystem::exists(ChunkCache::slab_path(dir.string(), key_of(1))));
  // Promotion evicted the then-LRU key 2, which demoted in turn.
  EXPECT_TRUE(cache.lookup(key_of(2), &out));
  EXPECT_EQ(cache.stats().disk_hits, 2u);
}

TEST(DiskTier, FlushOnDestructionAndRestartWarm) {
  const auto dir = fresh_cache_dir("restart");
  {
    ChunkCache cache(1 << 20);
    cache.attach_disk_tier(disk_config(dir));
    for (std::uint64_t i = 0; i < 5; ++i) {
      cache.insert(key_of(i), slab_with_payload(64 + i));
    }
    // Nothing evicted, so nothing on disk yet: the destructor's flush is
    // what persists the memory tier.
    EXPECT_EQ(cache.stats().disk_entries, 0u);
  }
  EXPECT_EQ(slab_file_count(dir), 5u);

  // A new cache pointed at the same directory serves its predecessor's
  // slabs without a single insert.
  ChunkCache revived(1 << 20);
  revived.attach_disk_tier(disk_config(dir));
  EXPECT_EQ(revived.stats().disk_entries, 5u);
  ColumnSlab out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(revived.lookup(key_of(i), &out)) << i;
    EXPECT_EQ(out.string_at(0, 0), std::string(64 + i, 'x'));
  }
  EXPECT_EQ(revived.stats().disk_hits, 5u);
}

TEST(DiskTier, CorruptTruncatedAndWrongVersionFilesAreCleanMisses) {
  const auto dir = fresh_cache_dir("corrupt");
  ChunkCache cache(1 << 20);
  cache.attach_disk_tier(disk_config(dir));
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.insert(key_of(i), slab_with_payload(256));
  }
  cache.flush_disk();
  ASSERT_EQ(slab_file_count(dir), 3u);

  // Mangle each file a different way: truncation, version flip, garbage.
  const auto p0 = ChunkCache::slab_path(dir.string(), key_of(0));
  const auto p1 = ChunkCache::slab_path(dir.string(), key_of(1));
  const auto p2 = ChunkCache::slab_path(dir.string(), key_of(2));
  std::filesystem::resize_file(p0, 10);
  {
    std::fstream f(p1, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    f.put('\x7f');  // version byte
  }
  {
    std::ofstream f(p2, std::ios::binary | std::ios::trunc);
    f << "not a slab at all";
  }

  // Memory still holds the slabs; drop it (keeping the files) by probing
  // through a fresh cache on the same directory.
  ChunkCache fresh(1 << 20);
  fresh.attach_disk_tier(disk_config(dir));
  ASSERT_EQ(fresh.stats().disk_entries, 3u);
  ColumnSlab out;
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(fresh.lookup(key_of(i), &out)) << i;  // miss, not error
  }
  CacheStats s = fresh.stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.corrupt_drops, 3u);
  EXPECT_EQ(s.disk_entries, 0u);  // dropped from the index...
  EXPECT_EQ(slab_file_count(dir), 0u);  // ...and unlinked
}

TEST(DiskTier, DiskBudgetEvictsOldestFiles) {
  const auto dir = fresh_cache_dir("budget");
  const std::size_t file_bytes =
      serialize_slab(slab_with_payload(1024)).size();
  ChunkCache cache(1 << 20);
  // Disk holds two files; the memory tier holds everything.
  cache.attach_disk_tier(disk_config(dir, 2 * file_bytes + file_bytes / 2));
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key_of(i), slab_with_payload(1024));
  }
  cache.flush_disk();
  CacheStats s = cache.stats();
  EXPECT_EQ(s.disk_entries, 2u);
  EXPECT_EQ(s.disk_evictions, 2u);
  EXPECT_LE(s.disk_bytes, 2 * file_bytes + file_bytes / 2);
  EXPECT_EQ(slab_file_count(dir), 2u);
}

TEST(DiskTier, ClearUnlinksSlabFiles) {
  const auto dir = fresh_cache_dir("clear");
  ChunkCache cache(1 << 20);
  cache.attach_disk_tier(disk_config(dir));
  cache.insert(key_of(1), slab_with_payload(64));
  cache.flush_disk();
  ASSERT_EQ(slab_file_count(dir), 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().disk_entries, 0u);
  EXPECT_EQ(cache.stats().disk_bytes, 0u);
  EXPECT_EQ(slab_file_count(dir), 0u);
  ColumnSlab out;
  EXPECT_FALSE(cache.lookup(key_of(1), &out));
}

TEST(DiskTier, PreloadOnAttachWarmsMemoryTier) {
  const auto dir = fresh_cache_dir("preload");
  {
    ChunkCache cache(1 << 20);
    cache.attach_disk_tier(disk_config(dir));
    for (std::uint64_t i = 0; i < 4; ++i) {
      cache.insert(key_of(i), slab_with_payload(64));
    }
  }  // flush on destruction
  // Corrupt one file: preload must drop it and warm the other three.
  {
    std::ofstream f(ChunkCache::slab_path(dir.string(), key_of(3)),
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  DiskTierConfig config = disk_config(dir);
  config.preload = true;
  ChunkCache revived(1 << 20);
  revived.attach_disk_tier(config);
  CacheStats s = revived.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.corrupt_drops, 1u);
  EXPECT_EQ(s.hits, 0u);  // preload is not a lookup
  // Every healthy key is a *memory* hit now; the corrupted one is a miss.
  ColumnSlab out;
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(revived.lookup(key_of(i), &out)) << i;
  }
  EXPECT_FALSE(revived.lookup(key_of(3), &out));
  s = revived.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.disk_hits, 0u);  // served from memory, no file opens
}

TEST(DiskTier, PreloadStopsAtMemoryBudget) {
  const auto dir = fresh_cache_dir("preload_budget");
  {
    ChunkCache cache(1 << 20);
    cache.attach_disk_tier(disk_config(dir));
    for (std::uint64_t i = 0; i < 6; ++i) {
      cache.insert(key_of(i), slab_with_payload(1024));
    }
  }
  DiskTierConfig config = disk_config(dir);
  config.preload = true;
  // Memory holds two entries; preload must warm exactly the two newest-
  // indexed and leave the rest to lazy promotion.
  ChunkCache revived(2 * ChunkCache::slab_bytes(slab_with_payload(1024)));
  revived.attach_disk_tier(config);
  EXPECT_EQ(revived.stats().entries, 2u);
  EXPECT_EQ(revived.stats().disk_entries, 6u);  // files all stay in place
  ColumnSlab out;
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(revived.lookup(key_of(i), &out)) << i;
  }
  EXPECT_EQ(revived.stats().hits, 6u);
  // At least the four that did not fit in memory came from disk (more if
  // promotion churn evicted a preloaded entry before its lookup).
  EXPECT_GE(revived.stats().disk_hits, 4u);
}

TEST(DiskTier, AttachTwiceThrows) {
  const auto dir = fresh_cache_dir("twice");
  ChunkCache cache(1 << 20);
  cache.attach_disk_tier(disk_config(dir));
  EXPECT_THROW(cache.attach_disk_tier(disk_config(dir)), ArgumentError);
}

TEST(DiskTier, ConfigFromEnv) {
  // Unset: no disk tier.
  unsetenv("PRIVID_CACHE_DIR");
  unsetenv("PRIVID_CACHE_DISK_BYTES");
  EXPECT_FALSE(DiskTierConfig::from_env().has_value());

  setenv("PRIVID_CACHE_DIR", "/some/dir", 1);
  auto config = DiskTierConfig::from_env();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->dir, "/some/dir");
  EXPECT_EQ(config->byte_budget, DiskTierConfig::kDefaultByteBudget);

  setenv("PRIVID_CACHE_DISK_BYTES", "123456", 1);
  config = DiskTierConfig::from_env();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->byte_budget, 123456u);

  // Unparsable or zero budget falls back to the default (same
  // never-crash-over-a-typo rule as PRIVID_CACHE).
  setenv("PRIVID_CACHE_DISK_BYTES", "lots", 1);
  EXPECT_EQ(DiskTierConfig::from_env()->byte_budget,
            DiskTierConfig::kDefaultByteBudget);
  setenv("PRIVID_CACHE_DISK_BYTES", "0", 1);
  EXPECT_EQ(DiskTierConfig::from_env()->byte_budget,
            DiskTierConfig::kDefaultByteBudget);

  // Preload knob: "1"/"true"/"on" enable, anything else stays off.
  setenv("PRIVID_CACHE_DIR", "/some/dir", 1);
  EXPECT_FALSE(DiskTierConfig::from_env()->preload);
  setenv("PRIVID_CACHE_PRELOAD", "1", 1);
  EXPECT_TRUE(DiskTierConfig::from_env()->preload);
  setenv("PRIVID_CACHE_PRELOAD", "yes-please", 1);
  EXPECT_FALSE(DiskTierConfig::from_env()->preload);

  // Empty dir means unset.
  setenv("PRIVID_CACHE_DIR", "", 1);
  EXPECT_FALSE(DiskTierConfig::from_env().has_value());
  unsetenv("PRIVID_CACHE_DIR");
  unsetenv("PRIVID_CACHE_DISK_BYTES");
  unsetenv("PRIVID_CACHE_PRELOAD");
}

// The core guarantee extends to the disk tier: releases, sensitivities and
// ledger charges are byte-identical with the cache off vs. shared with a
// memory+disk tier actively demoting/promoting mid-run, at 1, 4 and
// all-hardware threads.
TEST(CacheEquivalence, BitIdenticalMemVsMemDiskAcrossThreads) {
  for (const char* query : {kGroupedQuery, kKeyedQuery}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                                std::size_t{0}}) {
      const auto dir = fresh_cache_dir("equiv");
      Privid off_sys = make_system();
      Privid tiered_sys = make_system();
      tiered_sys.chunk_cache().attach_disk_tier(disk_config(dir));
      RunOptions off;
      off.reveal_raw = true;
      off.num_threads = threads;
      off.cache = CacheMode::kOff;
      RunOptions shared = off;
      shared.cache = CacheMode::kShared;

      auto off1 = off_sys.execute(query, off);
      auto off2 = off_sys.execute(query, off);
      auto tiered1 = tiered_sys.execute(query, shared);
      // Squeeze the memory tier so most entries demote to disk: the warm
      // run is then served substantially from slab files.
      tiered_sys.chunk_cache().set_byte_budget(
          tiered_sys.cache_stats().bytes / 4);
      EXPECT_GT(tiered_sys.cache_stats().disk_entries, 0u);
      auto tiered2 = tiered_sys.execute(query, shared);
      EXPECT_GT(tiered2.cache.hits, 0u);
      EXPECT_EQ(tiered2.cache.misses, 0u);
      EXPECT_GT(tiered_sys.cache_stats().disk_hits, 0u);

      expect_releases_identical(off1.releases, tiered1.releases);
      expect_releases_identical(off2.releases, tiered2.releases);
      EXPECT_EQ(off1.table_rows, tiered1.table_rows);
      EXPECT_EQ(off2.table_rows, tiered2.table_rows);
      for (FrameIndex f : {0, 250, 500, 999}) {
        EXPECT_EQ(off_sys.remaining_budget("cam", f),
                  tiered_sys.remaining_budget("cam", f));
      }
    }
  }
}

// Facade-level restart: a new process (here, a new Privid) pointed at the
// same cache directory replays the whole query from disk, with releases
// byte-identical to the first process's run (same noise seed, same
// system-RNG stream position).
TEST(CacheEquivalence, RestartWarmServesFromDiskBitIdentical) {
  const auto dir = fresh_cache_dir("facade_restart");
  RunOptions opts;
  opts.reveal_raw = true;
  opts.cache = CacheMode::kShared;
  std::vector<Release> first;
  {
    Privid sys = make_system();
    sys.chunk_cache().attach_disk_tier(disk_config(dir));
    auto res = sys.execute(kGroupedQuery, opts);
    EXPECT_EQ(res.cache.misses, 20u);
    first = res.releases;
  }  // ~Privid -> ~ChunkCache flushes the memory tier to dir
  EXPECT_EQ(slab_file_count(dir), 20u);

  Privid revived = make_system();
  revived.chunk_cache().attach_disk_tier(disk_config(dir));
  auto res = revived.execute(kGroupedQuery, opts);
  EXPECT_EQ(res.cache.hits, 20u);
  EXPECT_EQ(res.cache.misses, 0u);
  EXPECT_EQ(revived.cache_stats().disk_hits, 20u);
  expect_releases_identical(first, res.releases);
}

}  // namespace
}  // namespace privid::engine
