// Unit tests for the shared thread pool and for the determinism contract of
// the parallel PROCESS phase: whatever RunOptions::num_threads is, a query's
// releases (raw values, sensitivities and noise draws) and budget charges
// are bit-identical to the sequential run.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "engine/privid.hpp"
#include "engine/standing.hpp"
#include "sim/scenarios.hpp"

namespace privid::engine {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // single-threaded: no race
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i == 3 || i == 7 || i == 50) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& e) {
    // Every index still ran (the batch drains), and the error surfaced is
    // the one a sequential loop would have hit first.
    EXPECT_STREQ(e.what(), "3");
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(4 * 8);
  pool.parallel_for(4, [&](std::size_t outer) {
    pool.parallel_for(8, [&](std::size_t inner) {
      counts[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersAreSerialized) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> a(200), b(200);
  std::thread t1([&] {
    pool.parallel_for(a.size(), [&](std::size_t i) { a[i].fetch_add(1); });
  });
  std::thread t2([&] {
    pool.parallel_for(b.size(), [&](std::size_t i) { b[i].fetch_add(1); });
  });
  t1.join();
  t2.join();
  for (const auto& c : a) EXPECT_EQ(c.load(), 1);
  for (const auto& c : b) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, MaxThreadsCapsParticipation) {
  // A pool sized for a big request serves a smaller one without respawning
  // workers: at most max_threads distinct threads touch the batch.
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.parallel_for(
      64,
      [&](std::size_t) {
        std::lock_guard<std::mutex> lk(mu);
        seen.insert(std::this_thread::get_id());
      },
      2);
  EXPECT_LE(seen.size(), 2u);
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
}

// ------------------------------------- executor determinism under threads

// Same fixture as test_engine.cpp: `n` people crossing one at a time.
std::shared_ptr<sim::Scene> staircase_scene(int n) {
  VideoMeta m;
  m.camera_id = "cam";
  m.fps = 10;
  m.width = 1280;
  m.height = 720;
  m.extent = {0, 20.0 * n + 20};
  auto s = std::make_shared<sim::Scene>(m);
  for (int i = 0; i < n; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.1);
    double t0 = 5.0 + 20.0 * i;
    e.appearances.push_back(sim::Trajectory::linear(
        t0, t0 + 10, Box{0, 300, 60, 120}, Box{1200, 300, 60, 120}));
    s->add_entity(e);
  }
  return s;
}

Executable counting_exe() {
  return [](const ChunkView& view) {
    ExecOutput out;
    cv::DetectorConfig det;
    det.base_detect_prob = 0.98;
    det.false_positives_per_frame = 0;
    double mid = view.time().begin + view.time().duration() / 2;
    for (const auto& d : view.detect(det, mid)) {
      (void)d;
      out.rows.push_back({Value(1.0)});
    }
    out.simulated_runtime = 0.1;
    return out;
  };
}

Privid make_system(int n_people = 5, double budget = 100) {
  Privid sys(7);
  auto scene = staircase_scene(n_people);
  CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 11;
  reg.policy = {10, 1};
  reg.epsilon_budget = budget;
  reg.regions.emplace(
      "halves", RegionScheme("halves", BoundaryKind::kHard,
                             {{"left", Box{0, 0, 640, 720}},
                              {"right", Box{640, 0, 640, 720}}}));
  sys.register_camera(std::move(reg));
  sys.register_executable("count", counting_exe());
  return sys;
}

QueryResult run_with_threads(std::size_t num_threads, const std::string& q,
                             int n_people = 5) {
  Privid sys = make_system(n_people);
  RunOptions opts;
  opts.reveal_raw = true;
  opts.num_threads = num_threads;
  return sys.execute(q, opts);
}

// Exact comparison: the parallel path must be *bit*-identical, noise
// included, so EXPECT_EQ on doubles is deliberate.
void expect_identical(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.releases.size(), b.releases.size());
  for (std::size_t i = 0; i < a.releases.size(); ++i) {
    const Release& ra = a.releases[i];
    const Release& rb = b.releases[i];
    EXPECT_EQ(ra.label, rb.label);
    EXPECT_EQ(ra.value, rb.value);
    EXPECT_EQ(ra.raw, rb.raw);
    EXPECT_EQ(ra.sensitivity, rb.sensitivity);
    EXPECT_EQ(ra.epsilon, rb.epsilon);
    EXPECT_EQ(ra.argmax_key, rb.argmax_key);
  }
  EXPECT_EQ(a.table_rows, b.table_rows);
}

void expect_thread_invariant(const std::string& query, int n_people = 5) {
  auto sequential = run_with_threads(1, query, n_people);
  auto four = run_with_threads(4, query, n_people);
  auto hardware = run_with_threads(0, query, n_people);
  expect_identical(sequential, four);
  expect_identical(sequential, hardware);
}

TEST(ParallelDeterminism, GroupedQuery) {
  expect_thread_invariant(
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t GROUP BY chunk;");
}

TEST(ParallelDeterminism, KeyedQuery) {
  expect_thread_invariant(
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT seen, COUNT(*) FROM t GROUP BY seen WITH KEYS [0, 1, 2];");
}

TEST(ParallelDeterminism, MultiRegionQuery) {
  expect_thread_invariant(
      "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 BY REGION halves INTO c;"
      "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t GROUP BY region;");
}

TEST(ParallelDeterminism, StandingQueryPath) {
  auto run = [](std::size_t num_threads) {
    Privid sys = make_system(5);
    StandingQuery::Spec spec;
    spec.query_template =
        "SPLIT cam BEGIN {BEGIN} END {END} BY TIME 5 STRIDE 0 INTO c;"
        "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
        "WITH SCHEMA (seen:NUMBER=0) INTO t;"
        "SELECT COUNT(*) FROM t;";
    spec.start = 0;
    spec.period = 30;
    spec.opts.reveal_raw = true;
    spec.opts.num_threads = num_threads;
    StandingQuery sq(&sys, spec);
    return sq.advance(120);
  };
  auto sequential = run(1);
  auto parallel = run(4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].value, parallel[i].value);
    EXPECT_EQ(sequential[i].raw, parallel[i].raw);
    EXPECT_EQ(sequential[i].sensitivity, parallel[i].sensitivity);
  }
}

// A crashing chunk substitutes the default row; that substitution (and the
// resulting sensitivities) must survive parallel scheduling unchanged.
TEST(ParallelDeterminism, CrashingChunksMatchSequential) {
  auto run = [](std::size_t num_threads) {
    Privid sys(7);
    auto scene = staircase_scene(5);
    CameraRegistration reg;
    reg.meta = scene->meta();
    reg.content.scene = scene;
    reg.content.seed = 11;
    reg.policy = {10, 1};
    reg.epsilon_budget = 100;
    sys.register_camera(std::move(reg));
    sys.register_executable("flaky", [](const ChunkView& view) -> ExecOutput {
      if (view.chunk_index() % 3 == 1) throw std::runtime_error("crash");
      return {{{Value(1.0)}}, 0.1};
    });
    RunOptions opts;
    opts.reveal_raw = true;
    opts.num_threads = num_threads;
    return sys.execute(
        "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
        "PROCESS c USING flaky TIMEOUT 1 PRODUCING 2 ROWS "
        "WITH SCHEMA (seen:NUMBER=0) INTO t;"
        "SELECT COUNT(*) FROM t GROUP BY chunk;",
        opts);
  };
  auto a = run(1);
  auto b = run(4);
  expect_identical(a, b);
}

// ------------------------------------------------- wide-sweep stress test

// A >= 500-chunk sweep under the pool: releases AND the per-frame budget
// ledger must match the sequential run exactly — identical tables give
// identical sensitivities give identical charges.
TEST(ParallelStress, WideChunkSweepMatchesLedger) {
  const std::string query =
      "SPLIT cam BEGIN 0 END 120 BY TIME 0.2 STRIDE 0 INTO c;"  // 600 chunks
      "PROCESS c USING count TIMEOUT 1 PRODUCING 2 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT COUNT(*) FROM t;"
      "SELECT SUM(range(seen, 0, 2)) FROM t CONSUMING 0.25;";
  auto run = [&](std::size_t num_threads) {
    Privid sys = make_system(5);
    RunOptions opts;
    opts.reveal_raw = true;
    opts.num_threads = num_threads;
    auto result = sys.execute(query, opts);
    std::vector<double> remaining;
    for (FrameIndex f = 0; f < 1200; f += 97) {
      remaining.push_back(sys.remaining_budget("cam", f));
    }
    remaining.push_back(sys.min_remaining_budget("cam", {0, 120}));
    return std::make_pair(result, remaining);
  };
  auto [seq_result, seq_ledger] = run(1);
  auto [par_result, par_ledger] = run(4);
  ASSERT_EQ(seq_result.table_rows.at("t"), par_result.table_rows.at("t"));
  expect_identical(seq_result, par_result);
  ASSERT_EQ(seq_ledger.size(), par_ledger.size());
  for (std::size_t i = 0; i < seq_ledger.size(); ++i) {
    EXPECT_EQ(seq_ledger[i], par_ledger[i]) << "ledger slot " << i;
  }
}

}  // namespace
}  // namespace privid::engine
