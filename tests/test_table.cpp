// Unit tests for the table module: values, schemas, tables, relational
// operators, and aggregation functions.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "table/aggregate.hpp"
#include "table/ops.hpp"
#include "table/schema.hpp"
#include "table/table.hpp"
#include "table/value.hpp"

namespace privid {
namespace {

Schema car_schema() {
  return Schema({{"plate", DType::kString, Value(std::string())},
                 {"color", DType::kString, Value(std::string())},
                 {"speed", DType::kNumber, Value(0.0)}});
}

Table car_table() {
  Table t(car_schema(), TableProvenance{5.0, 10});
  t.append({Value("AAA-1"), Value("RED"), Value(42.0)});
  t.append({Value("BBB-2"), Value("WHITE"), Value(55.0)});
  t.append({Value("CCC-3"), Value("RED"), Value(61.0)});
  t.append({Value("AAA-1"), Value("RED"), Value(44.0)});
  return t;
}

// --------------------------------------------------------------- Value

TEST(Value, TypesAndAccess) {
  Value n(3.5), s("hi");
  EXPECT_TRUE(n.is_number());
  EXPECT_TRUE(s.is_string());
  EXPECT_DOUBLE_EQ(n.as_number(), 3.5);
  EXPECT_EQ(s.as_string(), "hi");
  EXPECT_THROW(n.as_string(), TypeError);
  EXPECT_THROW(s.as_number(), TypeError);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(3.0).to_string(), "3");
  EXPECT_EQ(Value(3.25).to_string(), "3.25");
  EXPECT_EQ(Value("x").to_string(), "x");
}

TEST(Value, Ordering) {
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(5.0), Value("a"));  // numbers sort before strings
  EXPECT_EQ(Value(2.0), Value(2.0));
  EXPECT_FALSE(Value(2.0) == Value("2"));
}

// -------------------------------------------------------------- Schema

TEST(Schema, LookupAndDefaults) {
  Schema s = car_schema();
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.index_of("speed"), 2u);
  EXPECT_FALSE(s.find("nope").has_value());
  EXPECT_THROW(s.index_of("nope"), LookupError);
  auto row = s.default_row();
  EXPECT_EQ(row[0], Value(std::string()));
  EXPECT_EQ(row[2], Value(0.0));
}

TEST(Schema, RejectsDuplicatesAndBadDefaults) {
  EXPECT_THROW(Schema({{"a", DType::kNumber, Value(0.0)},
                       {"a", DType::kNumber, Value(0.0)}}),
               ArgumentError);
  EXPECT_THROW(Schema({{"a", DType::kNumber, Value("oops")}}), TypeError);
}

TEST(Schema, TrustedColumns) {
  EXPECT_TRUE(Schema::is_trusted_column("chunk"));
  EXPECT_TRUE(Schema::is_trusted_column("region"));
  EXPECT_FALSE(Schema::is_trusted_column("plate"));
}

TEST(Schema, WithColumn) {
  Schema s = car_schema().with_column({"chunk", DType::kNumber, Value(0.0)});
  EXPECT_EQ(s.size(), 4u);
  EXPECT_THROW(car_schema().with_column({"plate", DType::kString,
                                         Value(std::string())}),
               ArgumentError);
}

// --------------------------------------------------------------- Table

TEST(Table, AppendValidates) {
  Table t(car_schema());
  EXPECT_THROW(t.append({Value("x")}), TypeError);  // arity
  EXPECT_THROW(t.append({Value(1.0), Value("RED"), Value(2.0)}), TypeError);
  t.append({Value("x"), Value("RED"), Value(2.0)});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.at(0, "color"), Value("RED"));
}

TEST(Table, ColumnValues) {
  Table t = car_table();
  auto speeds = t.column_values("speed");
  ASSERT_EQ(speeds.size(), 4u);
  EXPECT_DOUBLE_EQ(speeds[1].as_number(), 55.0);
}

TEST(Table, ProvenanceCarried) {
  Table t = car_table();
  EXPECT_DOUBLE_EQ(t.provenance().chunk_duration, 5.0);
  EXPECT_EQ(t.provenance().max_rows, 10u);
}

TEST(Table, ToStringRendersHeader) {
  std::string s = car_table().to_string(2);
  EXPECT_NE(s.find("plate"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

// ----------------------------------------------------------------- ops

TEST(Ops, SelectRows) {
  Table t = car_table();
  std::size_t color = t.schema().index_of("color");
  Table red = select_rows(
      t, [color](const RowView& r) { return r[color] == Value("RED"); });
  EXPECT_EQ(red.row_count(), 3u);
}

TEST(Ops, LimitRows) {
  EXPECT_EQ(limit_rows(car_table(), 2).row_count(), 2u);
  EXPECT_EQ(limit_rows(car_table(), 100).row_count(), 4u);
  EXPECT_EQ(limit_rows(car_table(), 0).row_count(), 0u);
}

TEST(Ops, ProjectPassAndClamp) {
  Table t = car_table();
  Table p = project(t, {pass_column(t, "plate"),
                        range_clamp_column(t, "speed", 45, 60)});
  EXPECT_EQ(p.schema().size(), 2u);
  EXPECT_DOUBLE_EQ(p.at(0, "speed").as_number(), 45.0);  // 42 clamped up
  EXPECT_DOUBLE_EQ(p.at(1, "speed").as_number(), 55.0);
  EXPECT_DOUBLE_EQ(p.at(2, "speed").as_number(), 60.0);  // 61 clamped down
}

TEST(Ops, RangeClampRejectsStrings) {
  Table t = car_table();
  EXPECT_THROW(range_clamp_column(t, "plate", 0, 1), TypeError);
  EXPECT_THROW(range_clamp_column(t, "speed", 10, 5), ArgumentError);
}

TEST(Ops, GroupByKeysIncludesEmptyGroups) {
  Table t = car_table();
  auto groups = group_by_keys(t, {"color"},
                              {{Value("RED"), Value("WHITE"), Value("SILVER")}});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].rows.size(), 3u);  // RED
  EXPECT_EQ(groups[1].rows.size(), 1u);  // WHITE
  EXPECT_EQ(groups[2].rows.size(), 0u);  // SILVER: declared but empty
}

TEST(Ops, GroupByKeysDropsUndeclared) {
  Table t = car_table();
  auto groups = group_by_keys(t, {"color"}, {{Value("WHITE")}});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].rows.size(), 1u);  // RED rows dropped
}

TEST(Ops, GroupByKeysCartesianProduct) {
  Table t = car_table();
  auto groups = group_by_keys(t, {"color", "plate"},
                              {{Value("RED"), Value("WHITE")},
                               {Value("AAA-1"), Value("BBB-2")}});
  ASSERT_EQ(groups.size(), 4u);
  // (RED, AAA-1) has 2 rows.
  EXPECT_EQ(groups[0].rows.size(), 2u);
  // (WHITE, BBB-2) has 1 row.
  EXPECT_EQ(groups[3].rows.size(), 1u);
}

TEST(Ops, GroupByKeysValidation) {
  Table t = car_table();
  EXPECT_THROW(group_by_keys(t, {}, {}), ArgumentError);
  EXPECT_THROW(group_by_keys(t, {"color"}, {{}}), ArgumentError);
  EXPECT_THROW(group_by_keys(t, {"color"}, {{Value("A")}, {Value("B")}}),
               ArgumentError);
}

TEST(Ops, GroupByTrustedDiscoversKeys) {
  Schema s({{"n", DType::kNumber, Value(0.0)}});
  Table t(s.with_column({"chunk", DType::kNumber, Value(0.0)}));
  t.append({Value(1.0), Value(0.0)});
  t.append({Value(2.0), Value(5.0)});
  t.append({Value(3.0), Value(0.0)});
  auto groups = group_by_trusted(t, "chunk");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].rows.size(), 2u);
  EXPECT_EQ(groups[1].rows.size(), 1u);
}

TEST(Ops, GroupByTrustedRejectsAnalystColumns) {
  Table t = car_table();
  EXPECT_THROW(group_by_trusted(t, "color"), ValidationError);
}

TEST(Ops, EquijoinMatchesAndRenames) {
  Table a = car_table();
  Schema bs({{"plate", DType::kString, Value(std::string())},
             {"owner", DType::kString, Value(std::string())}});
  Table b(bs);
  b.append({Value("AAA-1"), Value("alice")});
  b.append({Value("ZZZ-9"), Value("zed")});
  Table j = equijoin(a, b, "plate", "plate");
  EXPECT_EQ(j.row_count(), 2u);  // two AAA-1 rows in a match one in b
  EXPECT_TRUE(j.schema().has("plate_r"));
  EXPECT_EQ(j.at(0, "owner"), Value("alice"));
}

TEST(Ops, UnionRequiresSameSchema) {
  Table a = car_table();
  Table b = car_table();
  EXPECT_EQ(table_union(a, b).row_count(), 8u);
  Schema other({{"x", DType::kNumber, Value(0.0)}});
  EXPECT_THROW(table_union(a, Table(other)), TypeError);
}

TEST(Ops, DistinctKeepsFirst) {
  Table t = car_table();
  Table d = distinct(t);
  EXPECT_EQ(d.row_count(), 4u);  // all rows differ (speed differs)
  Table t2(car_schema());
  t2.append({Value("A"), Value("RED"), Value(1.0)});
  t2.append({Value("A"), Value("RED"), Value(1.0)});
  EXPECT_EQ(distinct(t2).row_count(), 1u);
}

// ------------------------------------------------------------ aggregate

TEST(Aggregate, Names) {
  EXPECT_EQ(agg_func_name(AggFunc::kCount), "COUNT");
  EXPECT_EQ(parse_agg_func("avg"), AggFunc::kAvg);
  EXPECT_EQ(parse_agg_func("SPAN"), AggFunc::kSpan);
  EXPECT_FALSE(parse_agg_func("median").has_value());
}

TEST(Aggregate, ConstraintRequirements) {
  EXPECT_FALSE(needs_range_constraint(AggFunc::kCount));
  EXPECT_TRUE(needs_range_constraint(AggFunc::kSum));
  EXPECT_TRUE(needs_size_constraint(AggFunc::kAvg));
  EXPECT_FALSE(needs_size_constraint(AggFunc::kSum));
}

TEST(Aggregate, BasicFunctions) {
  std::vector<Value> v{Value(1.0), Value(2.0), Value(3.0)};
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kCount, v), 3.0);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kSum, v), 6.0);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kAvg, v), 2.0);
  EXPECT_NEAR(aggregate_column(AggFunc::kVar, v), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kMin, v), 1.0);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kMax, v), 3.0);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kSpan, v), 2.0);
}

TEST(Aggregate, EmptyInputs) {
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kSum, {}), 0.0);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kAvg, {}), 0.0);
  EXPECT_DOUBLE_EQ(aggregate_column(AggFunc::kSpan, {}), 0.0);
}

TEST(Aggregate, ArgmaxOverGroups) {
  EXPECT_EQ(argmax_group({1.0, 5.0, 3.0}), 1u);
  EXPECT_EQ(argmax_group({2.0, 2.0}), 0u);  // ties: first
  EXPECT_THROW(argmax_group({}), ArgumentError);
  EXPECT_THROW(aggregate_column(AggFunc::kArgmax, {}), ArgumentError);
}

TEST(Aggregate, AggregateRows) {
  Table t = car_table();
  EXPECT_DOUBLE_EQ(aggregate_rows(AggFunc::kCount, t, "speed", {0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(aggregate_rows(AggFunc::kSum, t, "speed", {0, 2}), 103.0);
}

// Property: SUM and COUNT are additive over disjoint row partitions.
class AggregateAdditivity : public ::testing::TestWithParam<int> {};

TEST_P(AggregateAdditivity, SumSplitsAdditively) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<Value> all;
  std::vector<Value> part1, part2;
  for (int i = 0; i < 100; ++i) {
    double x = rng.uniform(-10, 10);
    all.emplace_back(x);
    (rng.bernoulli(0.5) ? part1 : part2).emplace_back(x);
  }
  double sum_all = aggregate_column(AggFunc::kSum, all);
  double sum_parts = aggregate_column(AggFunc::kSum, part1) +
                     aggregate_column(AggFunc::kSum, part2);
  // Partition is different from `all`'s split, so compare totals instead.
  std::vector<Value> merged = part1;
  merged.insert(merged.end(), part2.begin(), part2.end());
  EXPECT_NEAR(aggregate_column(AggFunc::kSum, merged), sum_all, 1e-9);
  EXPECT_NEAR(sum_parts, sum_all, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateAdditivity,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace privid
