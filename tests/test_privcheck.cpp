// privcheck's own suite: every rule family has (a) a fixture with one
// seeded violation asserting the rule fires at the expected file:line,
// (b) suppression round-trips (with justification passes, without fails),
// and (c) a real-tree leg proving the repo is clean with suppressions
// honored and that every in-tree suppression is load-bearing (ignoring
// suppressions makes the corresponding rule fire at the documented site).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "privcheck.hpp"

namespace {

using privcheck::Finding;
using privcheck::FileContent;
using privcheck::Options;
using privcheck::Report;

// Runs the analyzer over one fixture file.
Report run_one(const std::string& path, const std::string& text,
               bool honor_suppressions = true) {
  Options opts;
  opts.honor_suppressions = honor_suppressions;
  return privcheck::analyze_files({{path, text}}, opts);
}

// Active findings for `rule`, in (line) order.
std::vector<Finding> active(const Report& r, const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : r.findings) {
    if (!f.suppressed && f.rule == rule) out.push_back(f);
  }
  return out;
}

std::vector<Finding> suppressed(const Report& r, const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : r.findings) {
    if (f.suppressed && f.rule == rule) out.push_back(f);
  }
  return out;
}

bool has_finding(const Report& r, const std::string& rule,
                 const std::string& file_substr) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule &&
                              f.file.find(file_substr) != std::string::npos;
                     });
}

// ------------------------------------------------------------ rule family 1

TEST(Privcheck, PrivacyReleaseFiresOutsideReleasePoints) {
  Report r = run_one("src/cv/evil.cpp",
                     "#include \"privacy/laplace.hpp\"\n"
                     "double f(privid::Rng& rng) {\n"
                     "  return privid::LaplaceMechanism::release(1, 1, 1, "
                     "rng);\n"
                     "}\n");
  auto fs = active(r, "privacy-release");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "src/cv/evil.cpp");
  EXPECT_EQ(fs[0].line, 3);
}

TEST(Privcheck, PrivacyReleaseFlagsRawRngLaplaceSampling) {
  Report r = run_one("src/table/evil.cpp",
                     "double f(privid::Rng& rng) {\n"
                     "  return rng.laplace(0.0, 2.0);\n"
                     "}\n");
  auto fs = active(r, "privacy-release");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Privcheck, PrivacyReleaseAllowedAtReleasePoints) {
  Report r = run_one("src/engine/executor.cpp",
                     "double f(privid::Rng& rng) {\n"
                     "  return privid::LaplaceMechanism::release(1, 1, 1, "
                     "rng);\n"
                     "}\n");
  EXPECT_TRUE(active(r, "privacy-release").empty());
}

TEST(Privcheck, PrivacyLedgerFiresOutsideAdmission) {
  Report r = run_one("src/engine/evil.cpp",
                     "bool f(privid::BudgetLedger* led) {\n"
                     "  led->charge({0, 10}, 0, 1.0);\n"
                     "  return led->try_reserve({0, 10}, 0, 1.0);\n"
                     "}\n");
  auto fs = active(r, "privacy-ledger");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 3);
}

TEST(Privcheck, ExecOutputFiresOutsideSandboxBoundary) {
  Report r = run_one("src/engine/evil.cpp",
                     "#include \"engine/sandbox.hpp\"\n"
                     "privid::engine::ExecOutput leak();\n");
  auto fs = active(r, "exec-output");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

// ------------------------------------------------------------ rule family 2

TEST(Privcheck, DeterminismRandomFires) {
  Report r = run_one("src/engine/evil.cpp",
                     "#include <random>\n"
                     "int f() { return std::random_device{}(); }\n");
  auto fs = active(r, "determinism-random");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Privcheck, DeterminismClockFires) {
  Report r = run_one("src/service/evil.cpp",
                     "#include <chrono>\n"
                     "auto f() { return std::chrono::steady_clock::now(); "
                     "}\n");
  auto fs = active(r, "determinism-clock");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Privcheck, DeterminismEnvFires) {
  Report r = run_one("src/engine/evil.cpp",
                     "#include <cstdlib>\n"
                     "const char* f() { return std::getenv(\"X\"); }\n");
  auto fs = active(r, "determinism-env");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Privcheck, DeterminismEnvAllowedInChunkCache) {
  // The cache-configuration boundary owns the PRIVID_CACHE* env reads
  // (mode, disk dir, disk byte budget) — allowlisted, not suppressed,
  // because the cache-equivalence suites prove the knobs never reach a
  // release value.
  EXPECT_TRUE(run_one("src/engine/chunk_cache.cpp",
                      "#include <cstdlib>\n"
                      "const char* f() { return std::getenv(\"PRIVID_CACHE_DIR\"); }\n")
                  .clean());
}

TEST(Privcheck, DeterminismEnvAllowedInFaultPlane) {
  // fault/fault.cpp owns the PRIVID_FAULTS read: an armed plan perturbs
  // execution by design, and the chaos equivalence suite proves completed
  // queries stay byte-identical to a fault-free run.
  EXPECT_TRUE(run_one("src/fault/fault.cpp",
                      "#include <cstdlib>\n"
                      "const char* f() { return std::getenv(\"PRIVID_FAULTS\"); }\n")
                  .clean());
}

TEST(Privcheck, DeterminismAllowedInRngAndTimeutil) {
  EXPECT_TRUE(run_one("src/common/rng.cpp",
                      "int f() { return std::random_device{}(); }\n")
                  .clean());
  EXPECT_TRUE(run_one("src/common/timeutil.cpp",
                      "auto f() { return std::chrono::steady_clock::now(); "
                      "}\n")
                  .clean());
}

TEST(Privcheck, FloatFormatFiresOnReleaseModules) {
  Report r = run_one("src/table/evil.cpp",
                     "#include <cstdio>\n"
                     "void f(char* b, double v) {\n"
                     "  std::snprintf(b, 32, \"%.17g\", v);\n"
                     "}\n");
  auto fs = active(r, "float-format");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(Privcheck, FloatFormatIgnoresIntegerConversionsAndSimModule) {
  EXPECT_TRUE(run_one("src/table/ok.cpp",
                      "void f(char* b, int v) {\n"
                      "  std::snprintf(b, 32, \"%04d\", v);\n"
                      "}\n")
                  .clean());
  // sim/ labels are not on the release path; "%.3g" is fine there.
  EXPECT_TRUE(run_one("src/sim/ok.cpp",
                      "void f(char* b, double v) {\n"
                      "  std::snprintf(b, 32, \"%.3g\", v);\n"
                      "}\n")
                  .clean());
}

// ------------------------------------------------------------ rule family 3

TEST(Privcheck, ParallelHashFiresOnStdHash) {
  Report r = run_one("src/engine/evil.cpp",
                     "#include <functional>\n"
                     "std::size_t f(const std::string& s) {\n"
                     "  return std::hash<std::string>{}(s);\n"
                     "}\n");
  auto fs = active(r, "parallel-hash");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(Privcheck, ParallelHashFiresOnInlineMixConstants) {
  Report r = run_one("src/video/evil.cpp",
                     "unsigned long long f(unsigned long long x) {\n"
                     "  return x * 0x9E3779B97F4A7C15ull;\n"
                     "}\n");
  auto fs = active(r, "parallel-hash");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(Privcheck, ParallelHashAllowedInFingerprintAndRng) {
  EXPECT_TRUE(run_one("src/common/fingerprint.cpp",
                      "unsigned long long f(unsigned long long x) {\n"
                      "  return x * 0x100000001B3ull;\n"
                      "}\n")
                  .clean());
  EXPECT_TRUE(run_one("src/common/rng.hpp",
                      "unsigned long long f(unsigned long long x) {\n"
                      "  return x * 0x9E3779B97F4A7C15ull;\n"
                      "}\n")
                  .clean());
}

// ------------------------------------------------------------ rule family 4

TEST(Privcheck, RawThreadFires) {
  Report r = run_one("src/engine/evil.cpp",
                     "#include <thread>\n"
                     "void f() {\n"
                     "  std::thread t([] {});\n"
                     "  t.join();\n"
                     "}\n");
  auto fs = active(r, "raw-thread");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(Privcheck, ManualLockFiresOnStatementLevelLock) {
  Report r = run_one("src/engine/evil.cpp",
                     "void f(std::mutex& mu) {\n"
                     "  mu.lock();\n"
                     "  mu.unlock();\n"
                     "}\n");
  auto fs = active(r, "manual-lock");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 3);
}

TEST(Privcheck, ManualLockIgnoresWeakPtrLockExpressions) {
  EXPECT_TRUE(run_one("src/engine/ok.cpp",
                      "auto f(std::weak_ptr<int> wp) {\n"
                      "  auto sp = wp.lock();\n"
                      "  return sp;\n"
                      "}\n")
                  .clean());
}

// ------------------------------------------------------------ rule family 5

TEST(Privcheck, LayeringRejectsBackEdge) {
  Report r = run_one("src/table/evil.cpp",
                     "#include \"engine/executor.hpp\"\n"
                     "#include \"table/table.hpp\"\n");
  auto fs = active(r, "layering");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("table -> engine"), std::string::npos);
}

TEST(Privcheck, LayeringAllowsForwardEdgesCommonAndSelf) {
  EXPECT_TRUE(run_one("src/service/ok.cpp",
                      "#include \"common/rng.hpp\"\n"
                      "#include \"engine/executor.hpp\"\n"
                      "#include \"service/session.hpp\"\n")
                  .clean());
}

TEST(Privcheck, LayeringIgnoresCommentedIncludes) {
  EXPECT_TRUE(run_one("src/table/ok.cpp",
                      "// #include \"engine/executor.hpp\"\n"
                      "/* #include \"service/service.hpp\" */\n")
                  .clean());
}

// ------------------------------------------------------------ rule family 6

TEST(Privcheck, ObsTimingFiresOutsideObs) {
  Report r = run_one("src/engine/evil.cpp",
                     "#include \"obs/metrics.hpp\"\n"
                     "void f(privid::obs::LatencyHistogram* h) {\n"
                     "  h->observe_ns(privid::obs::detail::now_ns());\n"
                     "  std::uint64_t d = sw.elapsed_ns();\n"
                     "}\n");
  auto fs = active(r, "obs-timing");
  ASSERT_EQ(fs.size(), 3u);  // observe_ns + now_ns on line 3, elapsed_ns on 4
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[1].line, 3);
  EXPECT_EQ(fs[2].line, 4);
  EXPECT_NE(fs[0].message.find("obs plane"), std::string::npos);
}

TEST(Privcheck, ObsTimingAllowedInsideObs) {
  EXPECT_TRUE(run_one("src/obs/metrics.cpp",
                      "std::uint64_t f() { return detail::now_ns(); }\n")
                  .clean());
  EXPECT_TRUE(run_one("src/obs/trace.cpp",
                      "void g(Histo* h, std::uint64_t ns) { "
                      "h->observe_ns(ns); }\n")
                  .clean());
}

TEST(Privcheck, DeterminismClockAndEnvAllowedInObs) {
  // src/obs/ owns the process's single steady_clock read and trace.cpp
  // the PRIVID_TRACE* knobs; timing there is opaque to the rest of the
  // tree, so the determinism rules allowlist the plane.
  EXPECT_TRUE(run_one("src/obs/metrics.cpp",
                      "auto f() { return std::chrono::steady_clock::now(); "
                      "}\n")
                  .clean());
  EXPECT_TRUE(run_one("src/obs/trace.cpp",
                      "const char* f() { return "
                      "std::getenv(\"PRIVID_TRACE\"); }\n")
                  .clean());
}

TEST(Privcheck, LayeringAllowsObsFromAnywhere) {
  EXPECT_TRUE(run_one("src/common/thread_pool.hpp",
                      "#include \"obs/metrics.hpp\"\n")
                  .clean());
  EXPECT_TRUE(run_one("src/engine/chunk_cache.cpp",
                      "#include \"obs/metrics.hpp\"\n"
                      "#include \"obs/trace.hpp\"\n")
                  .clean());
}

TEST(Privcheck, LayeringRejectsObsBackEdge) {
  Report r = run_one("src/obs/evil.cpp",
                     "#include \"engine/executor.hpp\"\n");
  auto fs = active(r, "layering");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("obs -> engine"), std::string::npos);
}

TEST(Privcheck, LayeringAllowsFaultFromAnywhere) {
  // Injection sites are compiled into every plane's seams, so "fault" is
  // universally includable, like "obs".
  EXPECT_TRUE(run_one("src/common/thread_pool.cpp",
                      "#include \"fault/fault.hpp\"\n")
                  .clean());
  EXPECT_TRUE(run_one("src/service/scheduler.cpp",
                      "#include \"fault/fault.hpp\"\n")
                  .clean());
}

TEST(Privcheck, LayeringRejectsFaultBackEdge) {
  // The fault plane depends only on common/obs — it must never reach back
  // into the planes it is compiled into.
  Report r = run_one("src/fault/evil.cpp",
                     "#include \"engine/executor.hpp\"\n");
  auto fs = active(r, "layering");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("fault -> engine"), std::string::npos);
}

// ------------------------------------------------------------- suppressions

TEST(Privcheck, SuppressionWithJustificationPasses) {
  Report r = run_one("src/engine/ok.cpp",
                     "void f(std::mutex& mu) {\n"
                     "  // privcheck:allow(manual-lock): handing the lock "
                     "to C code\n"
                     "  mu.lock();\n"
                     "}\n");
  EXPECT_TRUE(r.clean());
  auto sup = suppressed(r, "manual-lock");
  ASSERT_EQ(sup.size(), 1u);
  EXPECT_EQ(sup[0].line, 3);
  EXPECT_NE(sup[0].justification.find("handing the lock"),
            std::string::npos);
}

TEST(Privcheck, SuppressionCoversThroughMultiLineComment) {
  Report r = run_one("src/engine/ok.cpp",
                     "void f(std::mutex& mu) {\n"
                     "  // privcheck:allow(manual-lock): a justification "
                     "that\n"
                     "  // continues onto a second comment line.\n"
                     "  mu.lock();\n"
                     "}\n");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(suppressed(r, "manual-lock").size(), 1u);
}

TEST(Privcheck, SuppressionWithoutJustificationFails) {
  Report r = run_one("src/engine/bad.cpp",
                     "void f(std::mutex& mu) {\n"
                     "  // privcheck:allow(manual-lock):\n"
                     "  mu.lock();\n"
                     "}\n");
  EXPECT_FALSE(r.clean());
  // The malformed marker is rejected AND the underlying finding stays.
  ASSERT_EQ(active(r, "bad-suppression").size(), 1u);
  ASSERT_EQ(active(r, "manual-lock").size(), 1u);
}

TEST(Privcheck, SuppressionOfUnknownRuleFails) {
  Report r = run_one("src/engine/bad.cpp",
                     "// privcheck:allow(no-such-rule): because reasons\n");
  auto fs = active(r, "bad-suppression");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("no-such-rule"), std::string::npos);
}

TEST(Privcheck, FileLevelSuppressionCoversWholeFile) {
  Report r = run_one("src/engine/ok.cpp",
                     "// privcheck:allow-file(manual-lock): FFI shims hand "
                     "locks across the boundary\n"
                     "void f(std::mutex& a, std::mutex& b) {\n"
                     "  a.lock();\n"
                     "  b.lock();\n"
                     "}\n");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(suppressed(r, "manual-lock").size(), 2u);
}

TEST(Privcheck, UnusedSuppressionIsFlagged) {
  Report r = run_one("src/engine/stale.cpp",
                     "// privcheck:allow(manual-lock): the lock below was "
                     "removed\n"
                     "void f() {}\n");
  ASSERT_EQ(active(r, "unused-suppression").size(), 1u);
}

TEST(Privcheck, NoSuppressModeReexposesFindings) {
  std::string text =
      "void f(std::mutex& mu) {\n"
      "  // privcheck:allow(manual-lock): justified here\n"
      "  mu.lock();\n"
      "}\n";
  EXPECT_TRUE(run_one("src/engine/ok.cpp", text, true).clean());
  Report r = run_one("src/engine/ok.cpp", text, false);
  ASSERT_EQ(active(r, "manual-lock").size(), 1u);
}

// ----------------------------------------------------------------- lexer

TEST(Privcheck, SymbolsInCommentsAndStringsDoNotFire) {
  EXPECT_TRUE(run_one("src/engine/ok.cpp",
                      "// std::thread would be flagged outside a comment\n"
                      "/* so would std::hash and getenv */\n"
                      "const char* s = \"std::random_device getenv\";\n"
                      "const char* r = R\"(steady_clock::now())\";\n")
                  .clean());
}

// ---------------------------------------------------------------- reporting

TEST(Privcheck, JsonReportCarriesFindings) {
  Report r = run_one("src/engine/evil.cpp", "std::thread t;\n");
  std::string json = privcheck::to_json(r);
  EXPECT_NE(json.find("\"rule\": \"raw-thread\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/engine/evil.cpp\""),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"active\": 1"), std::string::npos);
}

// ---------------------------------------------------------------- real tree
//
// PRIVCHECK_REPO_ROOT is injected by tests/CMakeLists.txt.

TEST(Privcheck, RealTreeIsCleanWithSuppressionsHonored) {
  Report r = privcheck::analyze_tree(PRIVCHECK_REPO_ROOT);
  std::string bad;
  for (const auto& f : r.findings) {
    if (!f.suppressed) {
      bad += f.file + ":" + std::to_string(f.line) + " [" + f.rule + "] " +
             f.message + "\n";
    }
  }
  EXPECT_TRUE(r.clean()) << bad;
  EXPECT_GT(r.files_scanned, 100u);
}

TEST(Privcheck, EveryInTreeSuppressionIsLoadBearing) {
  // Ignoring suppressions must re-fire each rule at its documented site —
  // i.e. removing any one suppression turns the tree red.
  Options opts;
  opts.honor_suppressions = false;
  Report r = privcheck::analyze_tree(PRIVCHECK_REPO_ROOT, opts);
  EXPECT_TRUE(has_finding(r, "parallel-hash", "src/table/column.cpp"));
  EXPECT_TRUE(has_finding(r, "raw-thread", "src/service/scheduler.hpp"));
  EXPECT_TRUE(has_finding(r, "raw-thread", "src/service/scheduler.cpp"));
  EXPECT_TRUE(has_finding(r, "exec-output", "src/analyst/executables.cpp"));
  EXPECT_TRUE(has_finding(r, "layering", "src/engine/privid.hpp"));
  // And each of those is justified when suppressions are honored.
  Report honored = privcheck::analyze_tree(PRIVCHECK_REPO_ROOT);
  for (const auto& f : honored.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.justification.empty()) << f.file;
    }
  }
}

TEST(Privcheck, RealTreeFixedSitesStayFixed) {
  // The PR that introduced privcheck also fixed real findings; they must
  // not regress (these are exact sites, not suppressions).
  Report r = privcheck::analyze_tree(PRIVCHECK_REPO_ROOT);
  for (const auto& f : r.findings) {
    EXPECT_FALSE(f.file == "src/sim/porto.cpp" && f.rule == "manual-lock")
        << "porto day_visits regressed to manual lock()/unlock()";
    EXPECT_FALSE(f.file == "src/engine/standing.cpp" &&
                 f.rule == "float-format")
        << "substitute_window regressed to printf float formatting";
    EXPECT_FALSE(f.rule == "parallel-hash" &&
                 f.file.find("fingerprint") == std::string::npos &&
                 f.file != "src/table/column.cpp")
        << f.file << ": new parallel hashing scheme";
  }
}

}  // namespace
