// Columnar data-plane tests.
//
// Three layers of coverage:
//   1. Row-vs-columnar equivalence: the engine suites' grouped, keyed and
//      standing queries replayed at threads {1, 4, hw} x cache {off,
//      shared} must reproduce — byte for byte — the releases (noise
//      included), sensitivities and ledger charges captured from the
//      row-based engine at the commit that introduced the columnar data
//      plane. The goldens below are hexfloat dumps from that run.
//   2. Unit tests for the columnar primitives: StringDict interning edge
//      cases (empty string, duplicate-heavy columns, copy semantics),
//      ColumnSlab typed appends and mixed-dtype schema validation errors,
//      Table slab splices and cross-dictionary gathers.
//   3. ChunkCache byte accounting: accounted bytes must track the actual
//      columnar footprint — including string-dictionary storage, so
//      duplicate-heavy payloads are accounted (and evicted) at their
//      deduplicated size.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "engine/chunk_cache.hpp"
#include "engine/privid.hpp"
#include "engine/relexec.hpp"
#include "engine/standing.hpp"
#include "sim/scenarios.hpp"
#include "table/column.hpp"
#include "table/ops.hpp"
#include "table/table.hpp"

namespace privid::engine {
namespace {

// ------------------------------------------------------------ fixtures
// Same shape as test_chunk_cache.cpp: `n` people crossing one at a time.

std::shared_ptr<sim::Scene> staircase_scene(int n) {
  VideoMeta m;
  m.camera_id = "cam";
  m.fps = 10;
  m.width = 1280;
  m.height = 720;
  m.extent = {0, 20.0 * n + 20};
  auto s = std::make_shared<sim::Scene>(m);
  for (int i = 0; i < n; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.1);
    double t0 = 5.0 + 20.0 * i;
    e.appearances.push_back(sim::Trajectory::linear(
        t0, t0 + 10, Box{0, 300, 60, 120}, Box{1200, 300, 60, 120}));
    s->add_entity(e);
  }
  return s;
}

Executable counting_exe() {
  return [](const ChunkView& view) {
    ExecOutput out;
    cv::DetectorConfig det;
    det.base_detect_prob = 0.98;
    det.false_positives_per_frame = 0;
    double mid = view.time().begin + view.time().duration() / 2;
    for (const auto& d : view.detect(det, mid)) {
      (void)d;
      out.rows.push_back({Value(1.0)});
    }
    out.simulated_runtime = 0.1;
    return out;
  };
}

Executable parity_exe() {
  return [](const ChunkView& view) {
    ExecOutput out;
    out.rows.push_back(
        {Value(view.chunk_index() % 2 == 0 ? "even" : "odd"), Value(1.0)});
    out.simulated_runtime = 0.1;
    return out;
  };
}

Privid make_system() {
  Privid sys(7);
  auto scene = staircase_scene(5);
  CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 11;
  reg.policy = {10, 1};
  reg.epsilon_budget = 100;
  Mask top(1280, 720, 64, 36);
  top.mask_box(Box{0, 0, 1280, 120});
  reg.masks.emplace("top_strip", MaskEntry{top, {5, 1}});
  sys.register_camera(std::move(reg));
  sys.register_executable("count", counting_exe());
  sys.register_executable("parity", parity_exe());
  return sys;
}

constexpr const char* kGroupedQuery =
    "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
    "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
    "WITH SCHEMA (seen:NUMBER=0) INTO t;"
    "SELECT COUNT(*) FROM t GROUP BY hour(chunk);";

constexpr const char* kKeyedQuery =
    "SPLIT cam BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
    "PROCESS c USING parity TIMEOUT 1 PRODUCING 1 ROWS "
    "WITH SCHEMA (side:STRING=\"even\", n:NUMBER=0) INTO t;"
    "SELECT side, COUNT(*) FROM t GROUP BY side WITH KEYS "
    "[\"even\", \"odd\"];";

constexpr const char* kStandingTemplate =
    "SPLIT cam BEGIN {BEGIN} END {END} BY TIME 5 STRIDE 0 INTO c;"
    "PROCESS c USING count TIMEOUT 1 PRODUCING 3 ROWS "
    "WITH SCHEMA (seen:NUMBER=0) INTO t;"
    "SELECT COUNT(*) FROM t;";

// -------------------------------------------- row-vs-columnar goldens
//
// Captured from the row-based engine (`Row = std::vector<Value>` storage)
// immediately before the columnar rewrite, threads = 1, cache off,
// noise seed 7, camera seed 11. Hexfloat: every bit of the noise draw and
// ledger arithmetic is pinned, not just a rounded decimal.

struct GoldenRelease {
  const char* label;
  const char* key;  // joined group key, "" when ungrouped
  double value;
  double raw;
  double sensitivity;
};

constexpr GoldenRelease kGroupedGolden[] = {
    {"*[0]", "0", 0x1.065c8e4276fc3p+4, 0x1.4p+3, 0x1.2p+3},
};
constexpr double kGroupedLedger = 0x1.8cp+6;  // remaining at any frame

constexpr GoldenRelease kKeyedGolden[] = {
    {"*[even]", "even", 0x1.843db42c4f52dp+3, 0x1.4p+3, 0x1.8p+1},
    {"*[odd]", "odd", 0x1.0ddb9e46dcb5fp+4, 0x1.4p+3, 0x1.8p+1},
};
constexpr double kKeyedLedger = 0x1.88p+6;

constexpr GoldenRelease kStandingGolden[] = {
    {"*", "", 0x1.2cb91c84edf86p+3, 0x1.8p+1, 0x1.2p+3},
    {"*", "", 0x1.7992dad49621dp+4, 0x1.8p+1, 0x1.2p+3},
    {"*", "", -0x1.4148776170d6ep+3, 0x1.8p+1, 0x1.2p+3},
};
constexpr double kStandingLedger = 0x1.8cp+6;

std::string joined_key(const Release& r) {
  std::string out;
  for (std::size_t i = 0; i < r.group_key.size(); ++i) {
    if (i) out += ",";
    out += r.group_key[i].to_string();
  }
  return out;
}

template <std::size_t N>
void expect_matches_golden(const std::vector<Release>& releases,
                           const GoldenRelease (&golden)[N]) {
  ASSERT_EQ(releases.size(), N);
  for (std::size_t i = 0; i < N; ++i) {
    EXPECT_EQ(releases[i].label, golden[i].label);
    EXPECT_EQ(joined_key(releases[i]), golden[i].key);
    // Bit-identical, not approximate: the columnar engine must reproduce
    // the row-based engine's doubles exactly.
    EXPECT_EQ(releases[i].value, golden[i].value) << "release " << i;
    EXPECT_EQ(releases[i].raw, golden[i].raw) << "release " << i;
    EXPECT_EQ(releases[i].sensitivity, golden[i].sensitivity)
        << "release " << i;
    EXPECT_EQ(releases[i].epsilon, 1.0);
  }
}

struct EquivalenceConfig {
  std::size_t threads;
  CacheMode cache;
};

class ColumnarEquivalence
    : public ::testing::TestWithParam<EquivalenceConfig> {};

TEST_P(ColumnarEquivalence, GroupedQueryMatchesRowEraGolden) {
  Privid sys = make_system();
  RunOptions opts;
  opts.reveal_raw = true;
  opts.num_threads = GetParam().threads;
  opts.cache = GetParam().cache;
  auto r = sys.execute(kGroupedQuery, opts);
  expect_matches_golden(r.releases, kGroupedGolden);
  for (FrameIndex f : {0, 250, 500, 999}) {
    EXPECT_EQ(sys.remaining_budget("cam", f), kGroupedLedger);
  }
}

TEST_P(ColumnarEquivalence, KeyedQueryMatchesRowEraGolden) {
  Privid sys = make_system();
  RunOptions opts;
  opts.reveal_raw = true;
  opts.num_threads = GetParam().threads;
  opts.cache = GetParam().cache;
  auto r = sys.execute(kKeyedQuery, opts);
  expect_matches_golden(r.releases, kKeyedGolden);
  for (FrameIndex f : {0, 250, 500, 999}) {
    EXPECT_EQ(sys.remaining_budget("cam", f), kKeyedLedger);
  }
}

TEST_P(ColumnarEquivalence, StandingQueryMatchesRowEraGolden) {
  Privid sys = make_system();
  StandingQuery::Spec spec;
  spec.query_template = kStandingTemplate;
  spec.period = 30;
  spec.opts.reveal_raw = true;
  spec.opts.num_threads = GetParam().threads;
  spec.opts.cache = GetParam().cache;
  StandingQuery q(&sys, spec);
  auto releases = q.advance(90);
  expect_matches_golden(releases, kStandingGolden);
  for (FrameIndex f : {0, 450, 899}) {
    EXPECT_EQ(sys.remaining_budget("cam", f), kStandingLedger);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsByCache, ColumnarEquivalence,
    ::testing::Values(EquivalenceConfig{1, CacheMode::kOff},
                      EquivalenceConfig{1, CacheMode::kShared},
                      EquivalenceConfig{4, CacheMode::kOff},
                      EquivalenceConfig{4, CacheMode::kShared},
                      EquivalenceConfig{0, CacheMode::kOff},
                      EquivalenceConfig{0, CacheMode::kShared}),
    [](const ::testing::TestParamInfo<EquivalenceConfig>& info) {
      std::string name = info.param.threads == 0
                             ? "hwThreads"
                             : std::to_string(info.param.threads) + "Threads";
      name += info.param.cache == CacheMode::kOff ? "CacheOff" : "CacheShared";
      return name;
    });

// ------------------------------------------------- number rendering

// Value::to_string moved from snprintf ("%lld" / "%g") to std::to_chars.
// The golden here is the old snprintf rendering itself: every
// representative double must render byte-identically.
std::string snprintf_render(double d) {
  char buf[32];
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", d);
  }
  return buf;
}

TEST(ValueGolden, ToCharsMatchesSnprintfRendering) {
  const double cases[] = {0.0,       -0.0,      1.0,       -1.0,
                          3.0,       3.25,      -2.5,      0.1,
                          1.0 / 3.0, M_PI,      1e-5,      1e-4,
                          -1e-5,     123456.789, 1234567.0, 9.99999e5,
                          1e6,       1e15,      1e15 - 1,  1e16,
                          -1e16,     5e-324,    1.7976931348623157e308,
                          0.000123456, 99999.5, 100000.5,  7200.0,
                          86400.0,   -86399.999};
  for (double d : cases) {
    EXPECT_EQ(Value(d).to_string(), snprintf_render(d)) << d;
  }
  // Non-finite values render like %g too.
  EXPECT_EQ(Value(std::nan("")).to_string(),
            snprintf_render(std::nan("")));
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).to_string(),
            snprintf_render(std::numeric_limits<double>::infinity()));
  // And a deterministic sweep across magnitudes.
  for (int e = -300; e <= 300; e += 7) {
    double d = std::ldexp(0.7306397245, e);
    EXPECT_EQ(Value(d).to_string(), snprintf_render(d)) << d;
  }
}

// ------------------------------------------------------- StringDict

TEST(StringDict, InternsAndDeduplicates) {
  StringDict d;
  EXPECT_EQ(d.intern("RED"), 0u);
  EXPECT_EQ(d.intern("WHITE"), 1u);
  EXPECT_EQ(d.intern("RED"), 0u);  // duplicate -> same code
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.at(0), "RED");
  EXPECT_EQ(d.at(1), "WHITE");
  EXPECT_EQ(d.find("WHITE"), std::optional<std::uint32_t>{1u});
  EXPECT_FALSE(d.find("BLUE").has_value());
}

TEST(StringDict, EmptyStringIsAValue) {
  StringDict d;
  std::uint32_t empty = d.intern("");
  std::uint32_t other = d.intern("x");
  EXPECT_NE(empty, other);
  EXPECT_EQ(d.at(empty), "");
  EXPECT_EQ(d.intern(""), empty);
  EXPECT_EQ(d.find(""), std::optional<std::uint32_t>{empty});
}

TEST(StringDict, DuplicateHeavyColumnStoresOneCopy) {
  StringDict d;
  const std::string big(4096, 'z');
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(d.intern(big), 0u);
  EXPECT_EQ(d.size(), 1u);
  // bytes() accounts one copy of the string, not a thousand.
  EXPECT_LT(d.bytes(), 2 * big.size());
}

TEST(StringDict, ReferencesSurviveInternOnACopy) {
  // Copying must restore the last block's reserved capacity: holding an
  // at() reference into a copy and then interning one more string must
  // not reallocate the block under the reference.
  StringDict a;
  for (int i = 0; i < 5; ++i) a.intern("s" + std::to_string(i));
  StringDict b = a;  // partially filled last block
  const std::string& held = b.at(2);
  const std::string* addr = &held;
  for (int i = 0; i < 200; ++i) b.intern("t" + std::to_string(i));
  EXPECT_EQ(&b.at(2), addr);
  EXPECT_EQ(held, "s2");
}

TEST(StringDict, CopyRebindsCodeTable) {
  // by_code_ points into the index map; a copy must point into its own
  // map. A dangling copy would crash or serve garbage here.
  StringDict a;
  a.intern("alpha");
  a.intern("beta");
  StringDict b = a;
  a.intern("gamma");     // mutate the original
  StringDict c;
  c = b;                 // and copy-assign too
  EXPECT_EQ(b.at(0), "alpha");
  EXPECT_EQ(b.at(1), "beta");
  EXPECT_EQ(c.at(0), "alpha");
  EXPECT_EQ(c.at(1), "beta");
  EXPECT_EQ(b.intern("delta"), 2u);  // copies keep interning independently
  EXPECT_EQ(a.at(2), "gamma");
}

// ------------------------------------------------------- ColumnSlab

Schema mixed_schema() {
  return Schema({{"plate", DType::kString, Value(std::string())},
                 {"speed", DType::kNumber, Value(0.0)}});
}

TEST(ColumnSlab, TypedAppendsAndAccessors) {
  ColumnSlab slab(mixed_schema());
  slab.reserve(2);
  slab.append_string(0, "AAA");
  slab.append_number(1, 42.0);
  slab.finish_row();
  slab.append_string(0, "AAA");
  slab.append_number(1, 55.0);
  slab.finish_row();
  EXPECT_EQ(slab.row_count(), 2u);
  EXPECT_EQ(slab.string_at(0, 0), "AAA");
  EXPECT_DOUBLE_EQ(slab.number_at(1, 1), 55.0);
  EXPECT_EQ(slab.value_at(1, 0), Value("AAA"));
  // Duplicate-heavy string column: one dictionary entry.
  EXPECT_EQ(slab.column(0).dict.size(), 1u);
  // Typed access with the wrong dtype throws.
  EXPECT_THROW(slab.number_at(0, 0), TypeError);
  EXPECT_THROW(slab.string_at(0, 1), TypeError);
}

TEST(ColumnSlab, MixedDtypeAppendValueValidates) {
  ColumnSlab slab(mixed_schema());
  EXPECT_THROW(slab.append_value(0, Value(3.0)), TypeError);
  EXPECT_THROW(slab.append_value(1, Value("oops")), TypeError);
  slab.append_value(0, Value("ok"));
  slab.append_value(1, Value(1.0));
  slab.finish_row();
  EXPECT_EQ(slab.row_count(), 1u);
}

TEST(Table, AppendSlabSplicesAndFillsTrustedColumns) {
  ColumnSlab slab(mixed_schema());
  slab.append_string(0, "AAA");
  slab.append_number(1, 42.0);
  slab.finish_row();
  slab.append_string(0, "BBB");
  slab.append_number(1, 55.0);
  slab.finish_row();

  Schema full({{"plate", DType::kString, Value(std::string())},
               {"speed", DType::kNumber, Value(0.0)},
               {kChunkColumn, DType::kNumber, Value(0.0)},
               {"camera", DType::kString, Value(std::string())}});
  Table t(full);
  t.append_slab(slab, {Value(15.0), Value("cam")});
  t.append_slab(slab, {Value(20.0), Value("cam")});
  ASSERT_EQ(t.row_count(), 4u);
  EXPECT_EQ(t.string_at(0, 0), "AAA");
  EXPECT_EQ(t.string_at(3, 0), "BBB");
  EXPECT_DOUBLE_EQ(t.number_at(2, 2), 20.0);
  EXPECT_EQ(t.string_at(1, 3), "cam");
  // The table's dictionary deduplicates across slabs and the constant
  // camera column interns exactly once.
  EXPECT_EQ(t.dict(0).size(), 2u);
  EXPECT_EQ(t.dict(3).size(), 1u);

  // Arity and dtype mismatches are rejected.
  EXPECT_THROW(t.append_slab(slab, {Value(1.0)}), TypeError);
  EXPECT_THROW(t.append_slab(slab, {Value("x"), Value("cam")}), TypeError);
}

TEST(Table, GatherRemapsCodesAcrossDictionaries) {
  Schema s({{"color", DType::kString, Value(std::string())}});
  Table a(s);
  a.append({Value("RED")});
  a.append({Value("WHITE")});
  a.append({Value("RED")});
  Table b(s);
  b.append({Value("WHITE")});  // b's code 0 is a's code 1
  b.append_gather(a, {2, 0, 1});
  ASSERT_EQ(b.row_count(), 4u);
  EXPECT_EQ(b.string_at(0, 0), "WHITE");
  EXPECT_EQ(b.string_at(1, 0), "RED");
  EXPECT_EQ(b.string_at(2, 0), "RED");
  EXPECT_EQ(b.string_at(3, 0), "WHITE");
  EXPECT_EQ(b.dict(0).size(), 2u);
}

TEST(Table, RowViewMaterializesCells) {
  Table t(mixed_schema());
  t.append({Value("AAA"), Value(42.0)});
  RowView r = t.row(0);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], Value("AAA"));
  EXPECT_DOUBLE_EQ(r.number(1), 42.0);
  EXPECT_EQ(r.string(0), "AAA");
  EXPECT_THROW(r.number(0), TypeError);
  EXPECT_THROW(t.row(5), ArgumentError);
}

TEST(ComputeGroups, BadColumnThrowsEvenOnEmptyTable) {
  // The error must not be data-dependent: a misspelled GROUP BY column
  // throws LookupError even when an earlier trusted column saw no rows
  // (e.g. a standing query's empty period).
  Table t(Schema({{"n", DType::kNumber, Value(0.0)},
                  {kChunkColumn, DType::kNumber, Value(0.0)}}));
  query::GroupKey chunk;
  chunk.column = kChunkColumn;
  query::GroupKey typo;
  typo.column = "no_such_column";
  typo.keys = {Value("x")};
  EXPECT_THROW(compute_groups(t, {chunk, typo}), LookupError);
}

// ----------------------------------------- ChunkCache byte accounting

ColumnSlab payload_slab(std::size_t n_rows, const std::string& s, double x) {
  ColumnSlab slab(mixed_schema());
  slab.reserve(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    slab.append_string(0, s);
    slab.append_number(1, x);
    slab.finish_row();
  }
  return slab;
}

TEST(ChunkCacheBytes, AccountedBytesTrackColumnarFootprint) {
  // The accounted size must scale with the real footprint: 8 bytes per
  // number cell, 4 bytes per string code, one dictionary copy per
  // distinct string.
  const auto small = payload_slab(10, "plate", 1.0);
  const auto big = payload_slab(1000, "plate", 1.0);
  const std::size_t small_b = ChunkCache::slab_bytes(small);
  const std::size_t big_b = ChunkCache::slab_bytes(big);
  // 990 more rows = 990 * (8 + 4) cell bytes, dictionary unchanged.
  EXPECT_EQ(big_b - small_b, 990u * 12u);
  // And the slab's own estimate is what the cache charges (plus the fixed
  // per-entry overhead).
  EXPECT_EQ(big_b, big.bytes() + (ChunkCache::slab_bytes(ColumnSlab{}) -
                                  ColumnSlab{}.bytes()));
}

TEST(ChunkCacheBytes, DuplicateHeavyStringsAccountedAtDedupedSize) {
  // 1000 copies of a 1 KiB string: the row-era layout charged ~1 MiB; the
  // columnar dictionary stores (and accounts) one copy + 4-byte codes.
  const std::string big(1024, 'x');
  const auto slab = payload_slab(1000, big, 0.0);
  const std::size_t b = ChunkCache::slab_bytes(slab);
  EXPECT_LT(b, 32u * 1024u);                    // ~13 KiB, not ~1 MiB
  EXPECT_GT(b, big.size() + 1000u * 12u);       // but >= cells + one copy
}

TEST(ChunkCacheBytes, StatsBytesEqualSumOfAccountedEntries) {
  ChunkCache cache(1 << 20);
  std::vector<ColumnSlab> slabs;
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    FingerprintBuilder fp;
    fp.add(i);
    auto slab = payload_slab(10 + i, "p" + std::to_string(i), double(i));
    expected += ChunkCache::slab_bytes(slab);
    cache.insert(fp.digest(), slab);
  }
  EXPECT_EQ(cache.stats().bytes, expected);
}

TEST(ChunkCacheBytes, BudgetEvictsOnActualColumnarFootprint) {
  // Two deduplicated entries fit; a third forces one LRU eviction — if
  // accounting under-counted dictionary bytes the budget would never
  // trigger.
  const std::string big(8192, 'y');
  const std::size_t entry = ChunkCache::slab_bytes(payload_slab(4, big, 0.0));
  ChunkCache cache(2 * entry);
  for (std::uint64_t i = 0; i < 3; ++i) {
    FingerprintBuilder fp;
    fp.add(i);
    cache.insert(fp.digest(), payload_slab(4, big, double(i)));
  }
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 2 * entry);
}

}  // namespace
}  // namespace privid::engine
