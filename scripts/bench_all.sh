#!/usr/bin/env bash
# Runs the paper-reproduction benches and records one JSON entry per bench
# (name, wall seconds, exit status, log path) in $OUT_JSON. Invoked by the
# `bench_all` CMake target; can also be run by hand:
#
#   BENCH_DIR=build/bench OUT_JSON=build/BENCH_results.json \
#     scripts/bench_all.sh bench_fig6_chunk_sweep ...
set -u

BENCH_DIR="${BENCH_DIR:?set BENCH_DIR to the directory holding bench binaries}"
OUT_JSON="${OUT_JSON:?set OUT_JSON to the output JSON path}"

# Sub-second timestamps need GNU date (%N); elsewhere fall back to whole
# seconds rather than writing garbage into the JSON.
if [[ "$(date +%N)" == *N* ]]; then
  now() { date +%s; }
else
  now() { date +%s.%N; }
fi

entries=()
failures=0
for name in "$@"; do
  bin="$BENCH_DIR/$name"
  log="$BENCH_DIR/$name.log"
  if [[ ! -x "$bin" ]]; then
    echo "bench_all: missing binary $bin" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "bench_all: running $name"
  start=$(now)
  "$bin" >"$log" 2>&1
  status=$?
  end=$(now)
  secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
  [[ $status -ne 0 ]] && failures=$((failures + 1))
  entries+=("    {\"name\": \"$name\", \"wall_seconds\": $secs, \"exit_status\": $status, \"log\": \"$log\"}")
done

{
  echo "{"
  echo "  \"generated_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"benches\": ["
  n=${#entries[@]}
  for i in "${!entries[@]}"; do
    sep=","
    [[ $((i + 1)) -eq $n ]] && sep=""
    echo "${entries[$i]}$sep"
  done
  echo "  ]"
  echo "}"
} >"$OUT_JSON"

echo "bench_all: wrote $OUT_JSON ($((${#entries[@]})) benches, $failures failures)"
exit $((failures > 0 ? 1 : 0))
