#!/usr/bin/env bash
# Runs the paper-reproduction benches and records JSON entries in $OUT_JSON.
# Each bench runs twice — PRIVID_NUM_THREADS=1 (the sequential baseline) and
# PRIVID_NUM_THREADS=0 (all hardware threads) — so BENCH_results.json holds
# the 1-thread and N-thread timings side by side; releases are bit-identical
# across the two (see README "Parallel execution"), so only wall time moves.
# Invoked by the `bench_all` CMake target; can also be run by hand:
#
#   BENCH_DIR=build/bench OUT_JSON=build/BENCH_results.json \
#     scripts/bench_all.sh bench_fig6_chunk_sweep ...
set -u

BENCH_DIR="${BENCH_DIR:?set BENCH_DIR to the directory holding bench binaries}"
OUT_JSON="${OUT_JSON:?set OUT_JSON to the output JSON path}"
# Benches that honor PRIVID_CACHE and should be recorded at off AND shared.
CACHE_BENCHES="${CACHE_BENCHES:-bench_standing_cache bench_service_concurrency}"

HW_THREADS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

# Sub-second timestamps need GNU date (%N); elsewhere fall back to whole
# seconds rather than writing garbage into the JSON.
if [[ "$(date +%N)" == *N* ]]; then
  now() { date +%s; }
else
  now() { date +%s.%N; }
fi

entries=()
failures=0
for name in "$@"; do
  bin="$BENCH_DIR/$name"
  if [[ ! -x "$bin" ]]; then
    echo "bench_all: missing binary $bin" >&2
    failures=$((failures + 1))
    continue
  fi
  # On a single-core host the two settings coincide; record only one run.
  modes=(1)
  [[ "$HW_THREADS" != 1 ]] && modes+=("$HW_THREADS")
  # Cache-sensitive benches additionally run at PRIVID_CACHE=off and
  # =shared, recording a "cache" field per entry, so the chunk-cache hit
  # path is trend-tracked (and regression-gated by bench_compare.py) like
  # every other timing. Other benches inherit the caller's PRIVID_CACHE.
  # Add new cache-sensitive benches to CACHE_BENCHES (and give them
  # off/shared entries in bench/bench_baseline.json).
  cache_modes=("")
  for cb in $CACHE_BENCHES; do
    [[ "$name" == "$cb" ]] && cache_modes=("off" "shared")
  done
  for threads in "${modes[@]}"; do
    for cache in "${cache_modes[@]}"; do
      log="$BENCH_DIR/$name.t$threads${cache:+.$cache}.log"
      echo "bench_all: running $name (threads=$threads${cache:+, cache=$cache})"
      start=$(now)
      if [[ -n "$cache" ]]; then
        PRIVID_NUM_THREADS="$threads" PRIVID_CACHE="$cache" "$bin" >"$log" 2>&1
      else
        PRIVID_NUM_THREADS="$threads" "$bin" >"$log" 2>&1
      fi
      status=$?
      end=$(now)
      secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
      [[ $status -ne 0 ]] && failures=$((failures + 1))
      cache_field=""
      [[ -n "$cache" ]] && cache_field="\"cache\": \"$cache\", "
      # Chaos bench runs (PRIVID_FAULTS set by the caller) are labelled so
      # obs_summary.py / bench_compare.py readers can tell a storm run from
      # a clean one; the fault.*/retry.*/breaker counters themselves ride
      # in via the obs snapshot below.
      faults_field=""
      [[ -n "${PRIVID_FAULTS:-}" ]] && \
        faults_field="\"faults\": \"$PRIVID_FAULTS\", "
      # Benches that call print_obs_summary leave one compact metrics
      # snapshot per leg; record the final (cumulative) one per run.
      # bench_compare.py keys runs on name/threads/cache only, so extra
      # fields ride along without affecting regression gating.
      obs_field=""
      obs_json="$(sed -n 's/^OBS_SNAPSHOT_JSON //p' "$log" | tail -1)"
      [[ -n "$obs_json" ]] && obs_field="\"obs\": $obs_json, "
      entries+=("    {\"name\": \"$name\", \"threads\": $threads, ${cache_field}${faults_field}${obs_field}\"wall_seconds\": $secs, \"exit_status\": $status, \"log\": \"$log\"}")
    done
  done
done

{
  echo "{"
  echo "  \"generated_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"hardware_threads\": $HW_THREADS,"
  echo "  \"benches\": ["
  n=${#entries[@]}
  for i in "${!entries[@]}"; do
    sep=","
    [[ $((i + 1)) -eq $n ]] && sep=""
    echo "${entries[$i]}$sep"
  done
  echo "  ]"
  echo "}"
} >"$OUT_JSON"

echo "bench_all: wrote $OUT_JSON ($((${#entries[@]})) runs, $failures failures)"
exit $((failures > 0 ? 1 : 0))
