#!/usr/bin/env python3
"""Pretty-prints a privid obs metrics snapshot.

Accepts either of the two JSON shapes the repo produces:

  - a raw registry snapshot (the OBS_SNAPSHOT_JSON payload, or
    Snapshot::json() written to a file): an object with "counters",
    "gauges", "doubles" and "histograms" keys;
  - a BENCH_results.json (an object with a "benches" list) — every entry
    carrying an "obs" field is summarized, labelled by its
    name/threads/cache run key.

For each snapshot it derives the headline rates the benches gate on:
per-tier cache hit rates (mem = (cache.hits - cache.disk.hits) / lookups,
disk = cache.disk.hits / lookups), the single-flight dedup rate
(followers / (leaders + followers)), the robustness-plane headlines
(fault.* injections, retry.* ladder outcomes, cache.disk.breaker_*
trips/sheds and open/closed state), and latency percentiles for every
histogram with observations.

Usage: scripts/obs_summary.py <snapshot.json | BENCH_results.json>

Exits 1 on unreadable files, malformed JSON, or JSON in neither shape —
CI runs it over the bench artifacts, so a bench that emits a broken
snapshot fails the job instead of uploading garbage. Stdlib only.
"""

import json
import sys


def fail(msg):
    print(f"obs_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def fmt_count(n):
    return f"{n:,}"


def summarize_snapshot(snap, indent=""):
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    doubles = snap.get("doubles", {})
    histograms = snap.get("histograms", {})
    for section in (counters, gauges, doubles, histograms):
        if not isinstance(section, dict):
            fail("snapshot section is not an object")

    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    disk_hits = counters.get("cache.disk.hits", 0)
    lookups = hits + misses
    if lookups:
        print(f"{indent}cache: {fmt_count(lookups)} lookups — "
              f"mem {100.0 * (hits - disk_hits) / lookups:.1f}%, "
              f"disk {100.0 * disk_hits / lookups:.1f}%, "
              f"miss {100.0 * misses / lookups:.1f}%")
        extra = {k: v for k, v in counters.items()
                 if k in ("cache.evictions", "cache.disk.demotions",
                          "cache.disk.evictions", "cache.corrupt_drops")
                 and v}
        if extra:
            print(f"{indent}       " +
                  ", ".join(f"{k.split('.')[-1]} {fmt_count(v)}"
                            for k, v in sorted(extra.items())))

    leaders = counters.get("dedup.leaders", 0)
    followers = counters.get("dedup.followers", 0)
    if leaders + followers:
        rate = 100.0 * followers / (leaders + followers)
        line = (f"{indent}dedup: {rate:.1f}% of arrivals joined a flight "
                f"({fmt_count(leaders)} leaders, "
                f"{fmt_count(followers)} followers")
        fallbacks = counters.get("dedup.fallbacks", 0)
        if fallbacks:
            line += f", {fmt_count(fallbacks)} fallbacks"
        print(line + ")")

    visits = counters.get("fault.visits", 0)
    fired = counters.get("fault.fired", 0)
    if visits or gauges.get("fault.armed", 0):
        armed = " (plan armed)" if gauges.get("fault.armed", 0) else ""
        print(f"{indent}fault: {fmt_count(fired)} fired across "
              f"{fmt_count(visits)} site visits{armed}")

    attempts = counters.get("retry.attempts", 0)
    if attempts:
        print(f"{indent}retry: {fmt_count(attempts)} extra attempts — "
              f"{fmt_count(counters.get('retry.recovered', 0))} recovered, "
              f"{fmt_count(counters.get('retry.exhausted', 0))} exhausted")

    trips = counters.get("cache.disk.breaker_trips", 0)
    skips = counters.get("cache.disk.breaker_skips", 0)
    if trips or skips:
        state = ("open" if gauges.get("cache.disk.breaker_open", 0)
                 else "closed")
        print(f"{indent}breaker: {fmt_count(trips)} trips, "
              f"{fmt_count(skips)} ops shed, "
              f"{fmt_count(counters.get('cache.disk.breaker_probes', 0))} "
              f"probes ({state})")

    rows = []
    for name in sorted(histograms):
        h = histograms[name]
        if not isinstance(h, dict):
            fail(f"histogram {name!r} is not an object")
        if h.get("count", 0):
            rows.append((name, h))
    if rows:
        print(f"{indent}{'histogram':<20} {'count':>10} {'p50 ms':>10} "
              f"{'p90 ms':>10} {'p99 ms':>10} {'max ms':>10}")
        for name, h in rows:
            print(f"{indent}{name:<20} {fmt_count(h['count']):>10} "
                  f"{h.get('p50_ms', 0):>10.3f} {h.get('p90_ms', 0):>10.3f} "
                  f"{h.get('p99_ms', 0):>10.3f} {h.get('max_ms', 0):>10.3f}")

    interesting_counters = {
        k: v for k, v in counters.items()
        if not k.startswith(("cache.", "dedup.", "fault.", "retry.")) and v}
    if interesting_counters:
        print(f"{indent}counters: " +
              ", ".join(f"{k}={fmt_count(v)}"
                        for k, v in sorted(interesting_counters.items())))
    live_gauges = {k: v for k, v in gauges.items() if v}
    if live_gauges:
        print(f"{indent}gauges:   " +
              ", ".join(f"{k}={fmt_count(v)}"
                        for k, v in sorted(live_gauges.items())))
    for k, v in sorted(doubles.items()):
        if v:
            print(f"{indent}{k} = {v:.3f}")


def is_snapshot(doc):
    return isinstance(doc, dict) and any(
        k in doc for k in ("counters", "gauges", "doubles", "histograms"))


def main(argv):
    if len(argv) != 2:
        fail("usage: obs_summary.py <snapshot.json | BENCH_results.json>")
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"malformed JSON in {path}: {e}")

    if is_snapshot(doc):
        print(f"obs snapshot: {path}")
        summarize_snapshot(doc)
        return 0

    if isinstance(doc, dict) and isinstance(doc.get("benches"), list):
        seen = 0
        for entry in doc["benches"]:
            if not isinstance(entry, dict) or "obs" not in entry:
                continue
            if not is_snapshot(entry["obs"]):
                fail(f"bench entry {entry.get('name')!r} has a malformed "
                     "obs field")
            seen += 1
            key = entry.get("name", "?")
            if "threads" in entry:
                key += f" threads={entry['threads']}"
            if "cache" in entry:
                key += f" cache={entry['cache']}"
            print(f"\n== {key}")
            summarize_snapshot(entry["obs"], indent="  ")
        if not seen:
            print("no bench entries carry an obs field")
        return 0

    fail(f"{path} is neither an obs snapshot nor a BENCH_results.json")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
