#!/usr/bin/env python3
"""Checks that docs/ cross-references cannot rot.

Scans README.md and docs/*.md for markdown links and validates:

  - relative file targets exist (paths resolve against the linking file);
  - heading anchors (#fragment, in-file or cross-file) match a heading in
    the target file, using GitHub's slug rules (lowercase, punctuation
    stripped, spaces to hyphens);
  - bare source-path references in backticks (e.g. `src/table/slab_io.hpp`)
    point at real files, so module maps stay in sync with the tree.

External links (http/https/mailto) are not fetched. Exits non-zero listing
every broken reference. Stdlib only; CI runs it in the lint job.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
# `path/like.this` backtick references with a slash and a file extension.
BACKTICK_PATH_RE = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.[A-Za-z0-9]+)`")
EXTERNAL = ("http://", "https://", "mailto:")


def gather_files():
    files = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def github_slug(heading):
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        cache[path] = {github_slug(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def expand_globs(pattern):
    """A target like src/table/slab_io.* names a family of real files."""
    directory, name = os.path.split(pattern)
    if "*" not in name:
        return [pattern]
    if not os.path.isdir(directory):
        return []
    prefix = name[: name.index("*")]
    return [
        os.path.join(directory, n)
        for n in os.listdir(directory)
        if n.startswith(prefix)
    ]


def check_file(md_path, errors):
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(md_path, REPO)
    base = os.path.dirname(md_path)

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        line = text.count("\n", 0, match.start()) + 1
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel}:{line}: broken link target '{target}'")
                continue
        else:
            resolved = md_path
        if fragment:
            if not resolved.endswith(".md") or not os.path.isfile(resolved):
                errors.append(
                    f"{rel}:{line}: anchor on non-markdown target '{target}'"
                )
            elif fragment not in anchors_of(resolved):
                errors.append(f"{rel}:{line}: no heading for anchor '{target}'")

    for match in BACKTICK_PATH_RE.finditer(text):
        target = match.group(1)
        line = text.count("\n", 0, match.start()) + 1
        resolved = os.path.normpath(os.path.join(REPO, target))
        if not expand_globs(resolved) and not os.path.exists(resolved):
            errors.append(f"{rel}:{line}: source reference '{target}' not in tree")


def main():
    errors = []
    files = gather_files()
    for path in files:
        check_file(path, errors)
    for err in errors:
        print(err)
    print(f"check_docs_links: {len(files)} files, {len(errors)} broken reference(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
