#!/usr/bin/env python3
"""Compare a BENCH_results.json against the checked-in baseline.

CI runs this after `cmake --build build --target bench_all`:

    python3 scripts/bench_compare.py build/BENCH_results.json \
        --baseline bench/bench_baseline.json

Exits non-zero if any figure/table bench run failed, if any bench's wall
time regressed more than --tolerance (default 25%) over the baseline, or
if a baseline entry is missing from the new results — a bench that stops
running is lost coverage, not a pass, so it fails loudly (drop it from the
baseline with --update if the removal was intentional). Entries present
only in the new results (a brand-new bench, or an extra thread count on a
bigger host) are reported but never fail the job.
Benches below --min-seconds in the baseline are skipped for the timing
gate — at that scale the timer noise on shared runners exceeds any real
regression — but must still be present in the results.

Regenerate the baseline after an intentional perf change:

    python3 scripts/bench_compare.py build/BENCH_results.json \
        --baseline bench/bench_baseline.json --update
"""

import argparse
import json
import sys


def run_key(entry):
    # Cache-sensitive benches carry a "cache" field (off/shared) so the
    # cold and warm paths are tracked as distinct series.
    key = "{}@t{}".format(entry["name"], entry.get("threads", 1))
    if "cache" in entry:
        key += "@{}".format(entry["cache"])
    return key


def load_runs(path):
    with open(path) as f:
        data = json.load(f)
    runs = {}
    for entry in data.get("benches", []):
        runs[run_key(entry)] = entry
    return data, runs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", help="BENCH_results.json from bench_all")
    ap.add_argument("--baseline", default="bench/bench_baseline.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional slowdown before failing")
    ap.add_argument("--min-seconds", type=float, default=0.1,
                    help="skip benches whose baseline is below this")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from these results")
    args = ap.parse_args()

    data, runs = load_runs(args.results)

    failed_runs = [k for k, e in runs.items() if e.get("exit_status", 0) != 0]
    for key in failed_runs:
        print("FAIL  {}: bench exited non-zero".format(key))

    if args.update:
        baseline = {
            "note": "regenerate with scripts/bench_compare.py --update",
            "benches": [
                {k: e[k] for k in ("name", "threads", "cache", "wall_seconds")
                 if k in e}
                for e in data.get("benches", [])
            ],
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print("wrote {} ({} entries)".format(args.baseline, len(runs)))
        return 1 if failed_runs else 0

    try:
        _, base_runs = load_runs(args.baseline)
    except FileNotFoundError:
        print("no baseline at {}; run with --update to create one".format(
            args.baseline))
        return 1 if failed_runs else 0

    regressions = []
    missing = []
    for key, base in sorted(base_runs.items()):
        cur = runs.get(key)
        if cur is None:
            print("FAIL  {}: in baseline but missing from results — bench "
                  "coverage was lost (if intentional, regenerate the "
                  "baseline with --update)".format(key))
            missing.append(key)
            continue
        base_s = base["wall_seconds"]
        cur_s = cur["wall_seconds"]
        if base_s < args.min_seconds:
            print("skip  {}: baseline {:.3f}s below noise floor".format(
                key, base_s))
            continue
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        verdict = "ok  "
        if ratio > 1.0 + args.tolerance:
            verdict = "FAIL"
            regressions.append(key)
        print("{}  {}: {:.3f}s vs baseline {:.3f}s ({:+.1f}%)".format(
            verdict, key, cur_s, base_s, (ratio - 1.0) * 100))
    for key in sorted(set(runs) - set(base_runs)):
        print("new   {}: {:.3f}s (not in baseline)".format(
            key, runs[key]["wall_seconds"]))

    if regressions:
        print("\n{} bench(es) regressed more than {:.0f}%".format(
            len(regressions), args.tolerance * 100))
    if missing:
        print("\n{} baseline bench(es) missing from results".format(
            len(missing)))
    if failed_runs or regressions or missing:
        return 1
    print("\nbench_compare: all benches within {:.0f}% of baseline".format(
        args.tolerance * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
