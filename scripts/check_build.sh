#!/usr/bin/env bash
# The tier-1 verify, exactly as CI runs it (see .github/workflows/ci.yml):
# configure, build everything, run every test suite. Run from the repo root:
#
#   scripts/check_build.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"
