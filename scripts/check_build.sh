#!/usr/bin/env bash
# The tier-1 verify, exactly as CI runs it (see .github/workflows/ci.yml):
# format gate, configure, build everything, run every test suite. Run from
# the repo root:
#
#   scripts/check_build.sh [build-dir]
#
# The CI matrix lines are runnable locally verbatim:
#
#   SANITIZE=address scripts/check_build.sh build-asan   # ASan + UBSan
#   SANITIZE=thread  scripts/check_build.sh build-tsan   # TSan
#   CXX=clang++      scripts/check_build.sh build-clang  # compiler leg
#   FORMAT=require FORMAT_ONLY=1 scripts/check_build.sh  # format gate only
#
# SANITIZE maps onto the PRIVID_SANITIZE CMake option; sanitizer builds are
# Debug-ish (RelWithDebInfo) so stacks stay readable. TEST_FILTER, when set,
# is passed to `ctest -R` — the TSan job uses it to run the concurrency-
# relevant suites (thread pool, executor, engine) rather than the world.
# CXX, when set, picks the compiler (-DCMAKE_CXX_COMPILER) so the gcc and
# clang CI legs share this script. CMAKE_CXX_COMPILER_LAUNCHER (e.g.
# ccache) is forwarded when set, and its hit-rate stats are printed at the
# end of the run. PRIVID_CACHE (off/shared/per-query) flows through to the
# test processes — the CI cache-equivalence job replays suites under
# different cache modes this way.
#
# FORMAT controls the clang-format gate (pinned to clang-format-18 because
# formatting drifts across majors):
#   check   (default) run the gate if clang-format-18 is installed; print a
#           loud notice — never a silent skip — when it is not
#   require run the gate; FAIL FAST if clang-format-18 is missing (CI)
#   skip    don't run the gate
# FORMAT_ONLY=1 exits right after the gate (the CI format job).
#
# LINT mirrors the FORMAT knob for static analysis (the CI lint job):
#   check   (default) after the build, run privcheck (built by this tree —
#           always available) and clang-tidy if a clang-tidy binary is
#           installed; print a loud notice — never a silent skip — when
#           clang-tidy is not
#   require same, but FAIL FAST if clang-tidy is missing (CI)
#   skip    run neither
# privcheck findings and clang-tidy warnings both fail the run; privcheck's
# JSON report lands in $BUILD_DIR/privcheck_report.json (CI artifact).
set -euo pipefail

BUILD_DIR="${1:-build}"
SANITIZE="${SANITIZE:-}"
TEST_FILTER="${TEST_FILTER:-}"
FORMAT="${FORMAT:-check}"
FORMAT_ONLY="${FORMAT_ONLY:-}"
LINT="${LINT:-check}"

# ------------------------------------------------------------ format gate
run_format_gate() {
  if ! command -v clang-format-18 >/dev/null 2>&1; then
    case "$FORMAT" in
      require)
        echo "check_build.sh: FATAL: clang-format-18 not found but" \
             "FORMAT=require — install it (apt-get install clang-format-18)" \
             "or rerun with FORMAT=skip" >&2
        exit 2
        ;;
      *)
        echo "check_build.sh: NOTICE: clang-format-18 not found;" \
             "SKIPPING the format gate (CI will still enforce it —" \
             "set FORMAT=require to fail fast here instead)" >&2
        return 0
        ;;
    esac
  fi
  echo "check_build.sh: running clang-format gate ($(clang-format-18 --version))"
  find src tests bench examples \
    \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
    xargs -0 clang-format-18 --dry-run -Werror
}

case "$FORMAT" in
  check|require) run_format_gate ;;
  skip) ;;
  *)
    echo "check_build.sh: FORMAT must be 'check', 'require' or 'skip'" >&2
    exit 2
    ;;
esac
if [[ -n "$FORMAT_ONLY" ]]; then
  echo "check_build.sh: FORMAT_ONLY set; stopping after the format gate"
  exit 0
fi

# ------------------------------------------------------- configure flags
# Always passed (even when empty) so a reused build dir can't keep a stale
# sanitizer setting from its CMake cache.
CMAKE_ARGS=("-DPRIVID_SANITIZE=$SANITIZE")
case "$SANITIZE" in
  "")
    # Explicit so a build dir reused after a sanitizer run can't keep that
    # run's Debug/RelWithDebInfo cached: tier-1 is always Release.
    CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=Release")
    ;;
  address)
    # ASan+UBSan ride a Debug build: unoptimized stacks give exact lines.
    CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=Debug")
    ;;
  thread)
    # TSan needs the optimizer on or the simulator-driven suites crawl.
    CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=RelWithDebInfo")
    ;;
  *)
    echo "check_build.sh: SANITIZE must be empty, 'address' or 'thread'" >&2
    exit 2
    ;;
esac
if [[ -n "${CXX:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_CXX_COMPILER=${CXX}")
fi
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_CXX_COMPILER_LAUNCHER=${CMAKE_CXX_COMPILER_LAUNCHER}")
fi

case "$LINT" in
  check|require|skip) ;;
  *)
    echo "check_build.sh: LINT must be 'check', 'require' or 'skip'" >&2
    exit 2
    ;;
esac

# ---------------------------------------------------------------- lint gate
# Runs after the build (privcheck is built by this tree; clang-tidy needs
# the compilation database the configure step emits).
run_lint_gate() {
  local privcheck_bin="$BUILD_DIR/tools/privcheck/privcheck"
  if [[ ! -x "$privcheck_bin" ]]; then
    echo "check_build.sh: FATAL: $privcheck_bin not built — configure with" \
         "-DPRIVID_BUILD_TOOLS=ON (the default) or rerun with LINT=skip" >&2
    exit 2
  fi
  echo "check_build.sh: running privcheck"
  "$privcheck_bin" --root . --json "$BUILD_DIR/privcheck_report.json" --quiet

  local tidy=""
  for cand in clang-tidy-18 clang-tidy; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy="$cand"
      break
    fi
  done
  if [[ -z "$tidy" ]]; then
    case "$LINT" in
      require)
        echo "check_build.sh: FATAL: clang-tidy not found but LINT=require" \
             "— install it (apt-get install clang-tidy-18) or rerun with" \
             "LINT=check" >&2
        exit 2
        ;;
      *)
        echo "check_build.sh: NOTICE: clang-tidy not found; SKIPPING the" \
             "clang-tidy half of the lint gate (CI will still enforce it" \
             "— set LINT=require to fail fast here instead)" >&2
        return 0
        ;;
    esac
  fi
  echo "check_build.sh: running $tidy ($($tidy --version | head -n 1))"
  # .cpp files only: headers are not in the compilation database; they are
  # checked through their includers via HeaderFilterRegex in .clang-tidy.
  find src -name '*.cpp' -print0 |
    xargs -0 "$tidy" -p "$BUILD_DIR" --quiet
}

# --------------------------------------------------------- build and test
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [[ "$LINT" != "skip" ]]; then
  run_lint_gate
fi
(
  cd "$BUILD_DIR"
  if [[ -n "$TEST_FILTER" ]]; then
    # --no-tests=error: a filter that matches nothing (e.g. after a suite
    # rename) must fail the job, not silently race-check zero tests.
    ctest --output-on-failure -j "$(nproc)" -R "$TEST_FILTER" --no-tests=error
  else
    ctest --output-on-failure -j "$(nproc)"
  fi
)

# ------------------------------------------------------------ ccache stats
# Printed at the end of every job so cache efficacy is visible in the log;
# a cold cache on a PR that should have hit warns that the CI cache key or
# the launcher forwarding broke.
if [[ "${CMAKE_CXX_COMPILER_LAUNCHER:-}" == *ccache* ]]; then
  if command -v ccache >/dev/null 2>&1; then
    echo "check_build.sh: ccache stats for this run:"
    ccache -s | grep -Ei "hit|miss|cache size" || ccache -s
  else
    echo "check_build.sh: CMAKE_CXX_COMPILER_LAUNCHER mentions ccache but" \
         "no ccache binary is on PATH — builds ran unlaunched" >&2
  fi
fi
