#!/usr/bin/env bash
# The tier-1 verify, exactly as CI runs it (see .github/workflows/ci.yml):
# configure, build everything, run every test suite. Run from the repo root:
#
#   scripts/check_build.sh [build-dir]
#
# The CI matrix lines are runnable locally verbatim:
#
#   SANITIZE=address scripts/check_build.sh build-asan   # ASan + UBSan
#   SANITIZE=thread  scripts/check_build.sh build-tsan   # TSan
#
# SANITIZE maps onto the PRIVID_SANITIZE CMake option; sanitizer builds are
# Debug-ish (RelWithDebInfo) so stacks stay readable. TEST_FILTER, when set,
# is passed to `ctest -R` — the TSan job uses it to run the concurrency-
# relevant suites (thread pool, executor, engine) rather than the world.
# CMAKE_CXX_COMPILER_LAUNCHER (e.g. ccache) is forwarded when set.
set -euo pipefail

BUILD_DIR="${1:-build}"
SANITIZE="${SANITIZE:-}"
TEST_FILTER="${TEST_FILTER:-}"

# Always passed (even when empty) so a reused build dir can't keep a stale
# sanitizer setting from its CMake cache.
CMAKE_ARGS=("-DPRIVID_SANITIZE=$SANITIZE")
case "$SANITIZE" in
  "")
    # Explicit so a build dir reused after a sanitizer run can't keep that
    # run's Debug/RelWithDebInfo cached: tier-1 is always Release.
    CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=Release")
    ;;
  address)
    # ASan+UBSan ride a Debug build: unoptimized stacks give exact lines.
    CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=Debug")
    ;;
  thread)
    # TSan needs the optimizer on or the simulator-driven suites crawl.
    CMAKE_ARGS+=("-DCMAKE_BUILD_TYPE=RelWithDebInfo")
    ;;
  *)
    echo "check_build.sh: SANITIZE must be empty, 'address' or 'thread'" >&2
    exit 2
    ;;
esac
if [[ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]]; then
  CMAKE_ARGS+=("-DCMAKE_CXX_COMPILER_LAUNCHER=${CMAKE_CXX_COMPILER_LAUNCHER}")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
cd "$BUILD_DIR"
if [[ -n "$TEST_FILTER" ]]; then
  # --no-tests=error: a filter that matches nothing (e.g. after a suite
  # rename) must fail the job, not silently race-check zero tests.
  ctest --output-on-failure -j "$(nproc)" -R "$TEST_FILTER" --no-tests=error
else
  ctest --output-on-failure -j "$(nproc)"
fi
