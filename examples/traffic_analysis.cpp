// Traffic analysis on a highway camera — the Listing-1 workload.
//
// Demonstrates:
//   - masking (the owner's parking-strip mask buys a much smaller ρ)
//   - hard-boundary spatial splitting (§7.2: one region per direction)
//   - multiple SELECTs over one PROCESS table (S1: average speed,
//     S2: per-colour counts with explicit GROUP BY keys)
//
// Run:  ./examples/traffic_analysis
#include <cstdio>

#include "analyst/executables.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

int main() {
  auto scenario = sim::make_highway(/*seed=*/9, /*hours=*/2, /*scale=*/0.25);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));

  engine::Privid system(11);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 9;
  reg.policy = {320.0, 2};  // unmasked: parked cars linger for minutes+
  reg.epsilon_budget = 8.0;
  // The published parking mask lowers rho to ~30 s (Fig. 3b / Fig. 4b).
  reg.masks.emplace("parking", engine::MaskEntry{scenario.recommended_mask,
                                                 {30.0, 2}});
  reg.regions.emplace("directions", scenario.regions);
  system.register_camera(std::move(reg));

  cv::DetectorConfig det;
  det.base_detect_prob = 0.9;
  system.register_executable(
      "car_report",
      analyst::make_car_reporter(det, cv::TrackerConfig::sort(20, 2, 0.1)));

  auto result = system.execute(R"(
    SPLIT highway BEGIN 6hr END 8hr BY TIME 30sec STRIDE 0sec
      WITH MASK parking INTO chunks;
    PROCESS chunks USING car_report TIMEOUT 1sec PRODUCING 20 ROWS
      WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0)
      INTO cars;
    /* S1: average car speed (px/s), range-constrained */
    SELECT AVG(range(speed, 0, 400)) FROM cars;
    /* S2: cars of each colour */
    SELECT color, COUNT(plate) FROM (SELECT plate, color FROM cars)
      GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"] CONSUMING 0.5;
  )");

  std::printf("S1 average speed (noisy):      %.1f px/s\n",
              result.releases[0].value);
  std::printf("S2 per-colour car counts (noisy, eps=0.5 each):\n");
  for (std::size_t i = 1; i < result.releases.size(); ++i) {
    std::printf("  %-8s %8.1f\n",
                result.releases[i].group_key[0].as_string().c_str(),
                result.releases[i].value);
  }
  return 0;
}
