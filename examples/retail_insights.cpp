// Retail analytics under a relaxed policy (§5.2).
//
// A store camera sees two very different populations: employees (on the
// floor all day — and publicly known to work there) and customers (visits
// under ~30 minutes). The owner sets (ρ = 30 min, K = 2), bounding only
// the customers; the employees fall outside the bound and receive the
// graceful Appendix C degradation instead of absolute protection.
//
// The example plans and runs a daily customer-traffic query and then
// prints what the policy actually promises each population.
//
// Run:  ./examples/retail_insights
#include <cmath>
#include <cstdio>

#include "analyst/executables.hpp"
#include "engine/privid.hpp"
#include "privacy/degradation.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

int main() {
  auto scenario = sim::make_retail(/*seed=*/77, /*hours=*/8, /*scale=*/1.0);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));

  engine::Privid system(23);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 77;
  // The relaxed policy: protect anything visible < 30 min per appearance,
  // up to 2 appearances — i.e. every customer, but not the employees.
  reg.policy = {1800.0, 2};
  reg.epsilon_budget = 10.0;
  reg.masks.emplace("counter",
                    engine::MaskEntry{scenario.recommended_mask, {1800.0, 2}});
  system.register_camera(std::move(reg));

  cv::DetectorConfig det;
  det.base_detect_prob = 0.85;
  system.register_executable(
      "count_visitors",
      analyst::make_entering_counter(det, cv::TrackerConfig::sort(20, 2, 0.1),
                                     sim::EntityClass::kPerson));

  // Protecting 30-minute visits is expensive at fine granularity: an event
  // can straddle 1 + ceil(rho/c) chunks, so the analyst uses 10-minute
  // chunks and a whole-day total rather than an hourly series. The dry-run
  // planner shows the cost before spending any budget.
  const char* query = R"(
    SPLIT store BEGIN 6hr END 14hr BY TIME 600sec STRIDE 0sec
      WITH MASK counter INTO chunks;
    PROCESS chunks USING count_visitors TIMEOUT 2sec PRODUCING 15 ROWS
      WITH SCHEMA (entered:NUMBER=0) INTO visitors;
    SELECT COUNT(*) FROM visitors;
  )";
  auto plan = system.plan(query);
  std::printf("Planner: sensitivity %.0f, Laplace scale %.0f, %s\n",
              plan.selects[0].releases[0].sensitivity,
              plan.selects[0].releases[0].noise_scale,
              plan.admissible ? "admissible" : "DENIED");

  auto result = system.execute(query);
  std::printf("Visitors over the day (noisy, eps = 1): %.0f  (+/- %.0f at "
              "99%%)\n",
              result.releases[0].value,
              plan.selects[0].releases[0].noise_scale * std::log(100.0));

  // What the (rho = 30 min, K = 3) policy means for each population
  // (Appendix C): detection probability for an adversary at 1% false
  // positives, after this 0.5-epsilon query.
  std::printf("\nPolicy guarantee at alpha = 1%% false positives:\n");
  std::printf("  %-28s %14s %18s\n", "individual", "visible for",
              "max P(detected)");
  struct Row {
    const char* who;
    double seconds;
  };
  const Row rows[] = {{"customer, quick stop", 300},
                      {"customer, long browse", 1700},
                      {"employee, full shift", 8 * 3600.0}};
  for (const auto& row : rows) {
    double eff = effective_epsilon_for_rho(0.5, 1800.0, row.seconds, 600.0);
    std::printf("  %-28s %11.0f s %17.1f%%\n", row.who, row.seconds,
                max_detection_probability(eff, 0.01) * 100);
  }
  std::printf(
      "\nCustomers stay near the 1%% random-guessing floor; the employees'\n"
      "shift-long presence is detectable — by design, since the fact that\n"
      "they work there is already public (§5.2).\n");
  return 0;
}
