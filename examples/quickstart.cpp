// Quickstart: the smallest end-to-end Privid deployment.
//
// A video owner registers one camera with a (ρ, K, ε) policy; an analyst
// submits a split-process-aggregate query counting people per hour. The
// released counts carry Laplace noise calibrated to the policy.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "analyst/executables.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

int main() {
  // ----------------------------------------------------------- owner side
  // One hour of a campus-like scene (synthetic stand-in for a real
  // recording; see DESIGN.md).
  auto scenario = sim::make_campus(/*seed=*/42, /*hours=*/2, /*scale=*/0.5);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));

  engine::Privid system(/*noise_seed=*/7);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 42;
  // Policy: protect anything visible < 85 s per appearance, up to 2
  // appearances, with a total per-frame budget of ε = 4.
  reg.policy = {85.0, 2};
  reg.epsilon_budget = 4.0;
  system.register_camera(std::move(reg));

  // --------------------------------------------------------- analyst side
  // The analyst brings their own model: detector + tracker that emits one
  // row per person entering the scene during a chunk (§6.2 convention).
  cv::DetectorConfig detector;
  detector.base_detect_prob = 0.85;
  system.register_executable(
      "count_people",
      analyst::make_entering_counter(detector,
                                     cv::TrackerConfig::sort(20, 2, 0.1),
                                     sim::EntityClass::kPerson));

  engine::QueryResult result = system.execute(R"(
    SPLIT campus BEGIN 6hr END 8hr BY TIME 30sec STRIDE 0sec INTO chunks;
    PROCESS chunks USING count_people TIMEOUT 1sec PRODUCING 6 ROWS
      WITH SCHEMA (entered:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people GROUP BY hour(chunk);
  )");

  std::printf("People entering the scene, per hour (noisy, eps=1/release):\n");
  for (const auto& r : result.releases) {
    std::printf("  hour %2.0f:  %.1f\n", r.group_key[0].as_number(), r.value);
  }
  std::printf("Remaining budget at 07:00: %.2f of 4.00\n",
              system.min_remaining_budget("campus", {6.5 * 3600, 7 * 3600}));
  return 0;
}
