// Crosswalk safety study on an urban camera.
//
// A transportation department counts pedestrians per hour to prioritise
// crosswalk upgrades, and runs the paper's stateful Q13 ("people entering
// from the south and exiting north") which needs larger chunks to observe
// a trajectory inside a single chunk.
//
// Run:  ./examples/crosswalk_safety
#include <cstdio>

#include "analyst/executables.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

int main() {
  auto scenario = sim::make_urban(/*seed=*/5, /*hours=*/3, /*scale=*/0.4);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));

  engine::Privid system(13);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 5;
  reg.policy = {270.0, 2};
  reg.epsilon_budget = 8.0;
  reg.masks.emplace("plaza", engine::MaskEntry{scenario.recommended_mask,
                                               {49.0, 2}});
  system.register_camera(std::move(reg));

  cv::DetectorConfig det;
  det.base_detect_prob = 0.8;
  system.register_executable(
      "count_people",
      analyst::make_entering_counter(det, cv::TrackerConfig::sort(20, 2, 0.1),
                                     sim::EntityClass::kPerson));
  system.register_executable(
      "south_to_north",
      analyst::make_trajectory_filter(det, cv::TrackerConfig::sort(20, 2, 0.1)));

  // Hourly pedestrian volumes (masked plaza lowers the noise).
  auto hourly = system.execute(R"(
    SPLIT urban BEGIN 6hr END 9hr BY TIME 30sec STRIDE 0sec
      WITH MASK plaza INTO chunks;
    PROCESS chunks USING count_people TIMEOUT 1sec PRODUCING 5 ROWS
      WITH SCHEMA (entered:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people GROUP BY hour(chunk);
  )");
  std::printf("Pedestrians per hour (noisy):\n");
  for (const auto& r : hourly.releases) {
    std::printf("  hour %2.0f:  %7.1f\n", r.group_key[0].as_number(), r.value);
  }

  // Q13: south -> north trajectories, 10-minute chunks for within-chunk
  // trajectory state.
  auto q13 = system.execute(R"(
    SPLIT urban BEGIN 6hr END 9hr BY TIME 600sec STRIDE 0sec
      WITH MASK plaza INTO big_chunks;
    PROCESS big_chunks USING south_to_north TIMEOUT 5sec PRODUCING 8 ROWS
      WITH SCHEMA (matched:NUMBER=1) INTO walkers;
    SELECT SUM(range(matched, 0, 1)) FROM walkers;
  )");
  std::printf("South->north walkers over 3 h (noisy): %.1f\n",
              q13.releases[0].value);
  return 0;
}
