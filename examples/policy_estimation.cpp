// Owner-side policy workflow (§5.2, §7.1, Appendix A & F):
//   1. run detector + tracker over historical video to estimate the
//      duration distribution (despite per-frame misses)
//   2. build the persistence heat-map and the greedy mask ordering
//      (Algorithm 2)
//   3. publish a mask -> (rho, K) policy map for analysts to choose from
//
// Run:  ./examples/policy_estimation
#include <cstdio>

#include "cv/persistence.hpp"
#include "cv/tuning.hpp"
#include "maskopt/greedy.hpp"
#include "maskopt/heatmap.hpp"
#include "maskopt/policy_map.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

int main() {
  auto scenario = sim::make_campus(/*seed=*/31, /*hours=*/1, /*scale=*/0.5);
  TimeInterval window{6 * 3600.0, 6 * 3600.0 + 600};  // 10-minute sample

  // 1. Duration estimation with an imperfect detector (Table 1 workflow).
  cv::DetectorConfig det;
  det.base_detect_prob = 0.65;  // misses a third of frames
  auto gt = cv::ground_truth_durations(scenario.scene, window);
  auto est = cv::estimate_persistence(scenario.scene, window, det,
                                      cv::TrackerConfig::sort(40, 2, 0.1),
                                      /*seed=*/3, nullptr, /*fps=*/5);
  std::printf("Ground-truth max duration : %5.1f s  (%zu entities)\n",
              gt.max_duration, gt.entity_count);
  std::printf("CV-estimated max duration : %5.1f s  "
              "(%.0f%% of object-frames missed)\n",
              est.max_duration, est.frame_miss_rate * 100);
  auto policy = cv::suggest_policy(est, 1.2, 2);
  std::printf("Suggested policy          : rho = %.0f s, K = %d\n\n",
              policy.rho, policy.k);

  // 2. Tracker tuning (Appendix A): small grid, best config by duration-
  //    distribution distance.
  cv::SortGrid grid;
  grid.max_age = {10, 40};
  grid.n_init = {2, 5};
  grid.iou_gate = {0.1, 0.3};
  auto tuned = cv::tune_sort(scenario.scene, window, det, grid, 3, 5);
  std::printf("Best tracker config       : %s (dist %.3f)\n\n",
              tuned.front().label.c_str(), tuned.front().distance);

  // 3. Greedy mask ordering + policy map (Algorithm 2, Appendix F.2).
  auto heat = maskopt::build_heatmap(scenario.scene, window, 32, 18, 1.0);
  auto ordering = maskopt::greedy_mask_ordering(heat, 40);
  maskopt::MaskPolicyMap map(scenario.scene.meta(), ordering, 1.2, 2, 6);
  std::printf("Published mask -> policy map:\n");
  std::printf("  %-10s %-8s %-10s %s\n", "mask", "boxes", "rho(s)",
              "identities kept");
  for (const auto& e : map.entries()) {
    std::printf("  %-10s %-8zu %-10.1f %.0f%%\n", e.mask_id.c_str(),
                e.boxes_masked, e.rho, e.identities_retained * 100);
  }
  return 0;
}
