// Multi-camera aggregation over the (synthetic) Porto taxi dataset —
// the paper's Case-2 queries: UNION, JOIN and ARGMAX across cameras.
//
// Run:  ./examples/multi_camera_taxi
#include <cstdio>
#include <string>

#include "analyst/executables.hpp"
#include "engine/privid.hpp"
#include "sim/porto.hpp"

using namespace privid;

int main() {
  sim::PortoConfig cfg;
  cfg.n_days = 180;
  cfg.n_taxis = 120;
  cfg.n_cameras = 40;
  auto porto = std::make_shared<sim::PortoSynth>(cfg);

  engine::Privid system(17);
  auto register_cam = [&](int cam) {
    engine::CameraRegistration reg;
    reg.meta.camera_id = "porto" + std::to_string(cam);
    reg.meta.fps = 1;
    reg.meta.extent = {0, cfg.n_days * 86400.0};
    reg.content.porto = porto;
    reg.content.porto_camera = cam;
    reg.content.seed = 1000 + static_cast<std::uint64_t>(cam);
    reg.policy = {porto->camera_rho(cam), 4};
    reg.epsilon_budget = 12.0;
    system.register_camera(std::move(reg));
  };
  register_cam(10);
  register_cam(27);
  system.register_executable("taxis", analyst::make_taxi_reporter());

  std::string keys;
  for (int t = 0; t < cfg.n_taxis; ++t) {
    if (t) keys += ", ";
    keys += "\"" + sim::PortoSynth::plate_of(t) + "\"";
  }
  std::string window = std::to_string(cfg.n_days * 86400);

  // Q4: average daily working span per taxi, via the UNION of the two
  // cameras; per-taxi-day span of sighting hours, range-bounded to 16 h.
  auto q4 = system.execute(
      "SPLIT porto10 BEGIN 0 END " + window + " BY TIME 60 STRIDE 0 INTO cA;"
      "SPLIT porto27 BEGIN 0 END " + window + " BY TIME 60 STRIDE 0 INTO cB;"
      "PROCESS cA USING taxis TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (plate:STRING=\"\", hod:NUMBER=0) INTO tA;"
      "PROCESS cB USING taxis TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (plate:STRING=\"\", hod:NUMBER=0) INTO tB;"
      "SELECT AVG(hours) RANGE 0 16 FROM "
      "(SELECT plate, day(chunk) AS day, SPAN(hod) RANGE 0 16 AS hours "
      " FROM tA UNION tB GROUP BY plate WITH KEYS [" + keys + "], day(chunk));");
  std::printf("Q4 avg working span (noisy): %.2f hours  (truth %.2f)\n",
              q4.releases[0].value, porto->true_avg_working_hours(10, 27));

  // Q5: taxis seen at BOTH cameras the same day (JOIN); released as a
  // total count, divided by the public number of days analyst-side.
  auto q5 = system.execute(
      "SPLIT porto10 BEGIN 0 END " + window + " BY TIME 60 STRIDE 0 INTO cA;"
      "SPLIT porto27 BEGIN 0 END " + window + " BY TIME 60 STRIDE 0 INTO cB;"
      "PROCESS cA USING taxis TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (plate:STRING=\"\", hod:NUMBER=0) INTO tA;"
      "PROCESS cB USING taxis TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (plate:STRING=\"\", hod:NUMBER=0) INTO tB;"
      "SELECT COUNT(*) FROM "
      "(SELECT plate, day(chunk) AS day, COUNT(*) AS n FROM tA "
      " GROUP BY plate WITH KEYS [" + keys + "], day(chunk)) JOIN "
      "(SELECT plate, day(chunk) AS day, COUNT(*) AS n FROM tB "
      " GROUP BY plate WITH KEYS [" + keys + "], day(chunk)) ON plate, day;");
  std::printf("Q5 avg taxis at both cameras per day (noisy): %.1f "
              "(truth %.1f)\n",
              q5.releases[0].value / cfg.n_days,
              porto->true_avg_taxis_both(10, 27));
  return 0;
}
