// privid_shell: an interactive analyst console against a demo deployment.
//
// Boots a Privid instance with the three evaluation cameras (campus,
// highway, urban), their owner masks and region schemes, and the standard
// analyst executables, then reads queries from stdin (terminated by ';' on
// a line of its own is not needed — statements end with ';' inline; enter
// an empty line to execute the buffer, or ".help" for commands).
//
// Run:  ./examples/privid_shell
//   privid> SPLIT campus BEGIN 6hr END 7hr BY TIME 30 STRIDE 0 INTO c;
//   privid> PROCESS c USING count_people TIMEOUT 1 PRODUCING 4 ROWS
//           WITH SCHEMA (entered:NUMBER=0) INTO t;
//   privid> SELECT COUNT(*) FROM t;
//   privid> <empty line>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "analyst/executables.hpp"
#include "common/error.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

void register_scenario(engine::Privid& sys, sim::Scenario scenario,
                       double masked_rho, std::uint64_t seed) {
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = seed;
  reg.policy = {300.0, 2};
  reg.epsilon_budget = 10.0;
  reg.masks.emplace("owner", engine::MaskEntry{scenario.recommended_mask,
                                               {masked_rho, 2}});
  reg.regions.emplace(scenario.regions.name(), scenario.regions);
  sys.register_camera(std::move(reg));
}

void print_help() {
  std::printf(
      ".help              this text\n"
      ".budget <camera>   remaining per-frame budget at 12:00\n"
      ".cameras           list registered cameras\n"
      ".quit              exit\n"
      "Anything else is buffered as query text; an empty line executes it.\n"
      "Cameras: campus, highway, urban (recordings 6am-6pm, owner mask\n"
      "'owner', region schemes 'crosswalks'/'directions').\n"
      "Executables: count_people, count_cars, car_report, trees,\n"
      "red_timer, south_to_north.\n");
}

}  // namespace

int main() {
  engine::Privid sys(2024);
  register_scenario(sys, sim::make_campus(42, 12.0, 0.5), 20.0, 42);
  register_scenario(sys, sim::make_highway(43, 12.0, 0.2), 35.0, 43);
  register_scenario(sys, sim::make_urban(44, 12.0, 0.2), 22.0, 44);

  cv::DetectorConfig det;
  det.base_detect_prob = 0.8;
  auto trk = cv::TrackerConfig::sort(20, 2, 0.1);
  sys.register_executable("count_people",
                          analyst::make_entering_counter(
                              det, trk, sim::EntityClass::kPerson));
  sys.register_executable("count_cars",
                          analyst::make_entering_counter(
                              det, trk, sim::EntityClass::kCar));
  sys.register_executable("car_report", analyst::make_car_reporter(det, trk));
  sys.register_executable("trees", analyst::make_tree_observer(0.02));
  sys.register_executable("red_timer", analyst::make_red_light_timer(0, 1.0));
  sys.register_executable("south_to_north",
                          analyst::make_trajectory_filter(det, trk));

  std::printf("privid shell - 3 cameras registered, eps_C = 10/frame.\n"
              "Type .help for commands.\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "privid> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == ".quit") break;
    if (line == ".help") {
      print_help();
      continue;
    }
    if (line == ".cameras") {
      for (const char* c : {"campus", "highway", "urban"}) {
        std::printf("  %-8s fps=%g, 6am-6pm\n", c, sys.camera_meta(c).fps);
      }
      continue;
    }
    if (line.rfind(".budget", 0) == 0) {
      std::istringstream is(line.substr(7));
      std::string cam;
      is >> cam;
      try {
        double rem = sys.min_remaining_budget(
            cam, {12 * 3600.0, 12 * 3600.0 + 60});
        std::printf("  %s: %.3f of 10.0 remaining at noon\n", cam.c_str(),
                    rem);
      } catch (const Error& e) {
        std::printf("  error: %s\n", e.what());
      }
      continue;
    }
    if (!line.empty()) {
      buffer += line + "\n";
      continue;
    }
    if (buffer.empty()) continue;
    try {
      auto result = sys.execute(buffer);
      for (const auto& r : result.releases) {
        if (r.is_argmax) {
          std::printf("  %-24s -> %s\n", r.label.c_str(),
                      r.argmax_key.c_str());
        } else {
          std::printf("  %-24s -> %.2f   (eps %.2f)\n", r.label.c_str(),
                      r.value, r.epsilon);
        }
      }
      for (const auto& [table, rows] : result.table_rows) {
        std::printf("  [table %s: %zu rows]\n", table.c_str(), rows);
      }
    } catch (const Error& e) {
      std::printf("  error: %s\n", e.what());
    }
    buffer.clear();
  }
  return 0;
}
