// Query-service demo: admission control, weighted fair-share, and
// in-flight dedup from one binary.
//
// Three scenes:
//   1. Admission — a camera with a small budget admits the first analyst's
//      query, rejects the second at submit time (BudgetError, nothing
//      charged), and refunds a query that crashes mid-run.
//   2. Fair share — a heavy analyst (weight 4) and a light one (weight 1)
//      flood the service together; the scheduler's served counters show
//      the 4:1 split without either starving.
//   3. Dedup — four analysts concurrently ask the same question; the
//      sandbox-invocation counter shows the service paid for it once.
//
// Build: cmake --build build --target service_demo
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "engine/privid.hpp"

using namespace privid;

namespace {

std::shared_ptr<sim::Scene> crossing_scene(const std::string& camera_id,
                                           int people) {
  VideoMeta m;
  m.camera_id = camera_id;
  m.fps = 10;
  m.width = 1280;
  m.height = 720;
  m.extent = {0, 20.0 * people + 20};
  auto s = std::make_shared<sim::Scene>(m);
  for (int i = 0; i < people; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.1);
    double t0 = 5.0 + 20.0 * i;
    e.appearances.push_back(sim::Trajectory::linear(
        t0, t0 + 10, Box{0, 300, 60, 120}, Box{1200, 300, 60, 120}));
    s->add_entity(e);
  }
  return s;
}

void register_camera(engine::Privid* sys, const std::string& id,
                     double budget) {
  auto scene = crossing_scene(id, 5);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 11;
  reg.policy = {10.0, 1};
  reg.epsilon_budget = budget;
  sys->register_camera(std::move(reg));
}

std::string count_query(const std::string& cam, const std::string& exe) {
  return "SPLIT " + cam +
         " BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
         "PROCESS c USING " + exe +
         " TIMEOUT 1 PRODUCING 3 ROWS "
         "WITH SCHEMA (seen:NUMBER=0) INTO t;"
         "SELECT SUM(range(seen, 0, 3)) FROM t;";
}

engine::Executable people_counter(std::shared_ptr<std::atomic<int>> tally) {
  return [tally](const engine::ChunkView& view) {
    if (tally) tally->fetch_add(1, std::memory_order_relaxed);
    engine::ExecOutput out;
    cv::DetectorConfig det;
    det.base_detect_prob = 0.98;
    det.false_positives_per_frame = 0;
    double mid = view.time().begin + view.time().duration() / 2;
    out.rows.push_back(
        {Value(static_cast<double>(view.detect(det, mid).size()))});
    out.simulated_runtime = 0.1;
    return out;
  };
}

struct DemoBoom {};

void admission_scene() {
  std::printf("\n--- 1. admission control ---\n");
  engine::Privid sys(2024);
  // The probe query costs epsilon 1.0; budget 1.5 fits one, not two.
  register_camera(&sys, "gate", 1.5);
  sys.register_executable("count", people_counter(nullptr));
  sys.register_executable("crash",
                          [](const engine::ChunkView&) -> engine::ExecOutput {
                            throw DemoBoom{};
                          });
  auto& service = sys.service();

  auto first = service.submit("alice", count_query("gate", "count"));
  auto result = service.wait(first);
  std::printf("alice admitted: released %.2f (epsilon %.1f)\n",
              result.releases[0].value, result.releases[0].epsilon);
  try {
    service.submit("bob", count_query("gate", "count"));
    std::printf("bob admitted (unexpected!)\n");
  } catch (const BudgetError& e) {
    std::printf("bob rejected at submit: %s\n", e.what());
  }
  std::printf("remaining budget mid-window: %.2f\n",
              sys.min_remaining_budget("gate", {0, 100}));

  // A crashing query refunds its reservation. Carol's CONSUMING 0.5 fits
  // the remaining budget, so she is admitted — then the sandbox crash
  // aborts the query and the 0.5 comes back.
  std::string crashing =
      "SPLIT gate BEGIN 0 END 100 BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING crash TIMEOUT 1 PRODUCING 3 ROWS "
      "WITH SCHEMA (seen:NUMBER=0) INTO t;"
      "SELECT SUM(range(seen, 0, 3)) FROM t CONSUMING 0.5;";
  try {
    service.wait(service.submit("carol", crashing));
    std::printf("carol's query completed (unexpected!)\n");
  } catch (const BudgetError&) {
    std::printf("carol rejected at submit (unexpected!)\n");
  } catch (...) {
    std::printf("carol's query crashed mid-run; reservation refunded\n");
  }
  std::printf("remaining budget after refund: %.2f\n",
              sys.min_remaining_budget("gate", {0, 100}));
}

void fair_share_scene() {
  std::printf("\n--- 2. weighted fair share ---\n");
  engine::Privid sys(2024);
  register_camera(&sys, "plaza", 1000.0);
  sys.register_executable("count", people_counter(nullptr));
  service::QueryService::Config cfg;
  cfg.num_threads = 2;
  auto& service = sys.configure_service(cfg);
  service.register_analyst("heavy", 4.0);
  service.register_analyst("light", 1.0);

  std::vector<service::QueryTicket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(service.submit("heavy", count_query("plaza", "count")));
    tickets.push_back(service.submit("light", count_query("plaza", "count")));
  }
  for (auto& t : tickets) service.wait(t);
  service.drain();
  auto heavy = service.analyst_stats("heavy");
  auto light = service.analyst_stats("light");
  std::printf("heavy (weight %.0f): %llu tasks served, %llu queries done\n",
              heavy.weight, static_cast<unsigned long long>(heavy.tasks_served),
              static_cast<unsigned long long>(heavy.completed));
  std::printf("light (weight %.0f): %llu tasks served, %llu queries done\n",
              light.weight, static_cast<unsigned long long>(light.tasks_served),
              static_cast<unsigned long long>(light.completed));
  std::printf("(while both queues were backed up, tasks were interleaved "
              "~%.0f:1)\n", heavy.weight / light.weight);
}

void dedup_scene() {
  std::printf("\n--- 3. in-flight dedup ---\n");
  engine::Privid sys(2024);
  register_camera(&sys, "mall", 1000.0);
  auto tally = std::make_shared<std::atomic<int>>(0);
  sys.register_executable("count", people_counter(tally));
  service::QueryService::Config cfg;
  cfg.num_threads = 4;
  cfg.cache = engine::CacheMode::kShared;
  auto& service = sys.configure_service(cfg);

  std::vector<service::QueryTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(service.submit("analyst" + std::to_string(i),
                                     count_query("mall", "count")));
  }
  for (auto& t : tickets) service.wait(t);
  service.drain();
  auto stats = service.stats();
  std::printf("4 identical queries x 20 chunks -> %d sandbox runs\n",
              tally->load());
  std::printf("scheduler ran %llu tasks; dedup: %llu leaders, "
              "%llu followers; cache hits this service: %llu\n",
              static_cast<unsigned long long>(stats.scheduler.tasks_run),
              static_cast<unsigned long long>(stats.dedup.leaders),
              static_cast<unsigned long long>(stats.dedup.followers),
              static_cast<unsigned long long>(sys.cache_stats().hits));
}

}  // namespace

int main() {
  std::printf("Privid query service demo: one owner, many analysts, one "
              "privacy budget\n");
  admission_scene();
  fair_share_scene();
  dedup_scene();
  std::printf("\ndone\n");
  return 0;
}
