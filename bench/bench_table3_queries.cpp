// Table 3: the Q4-Q13 query case studies.
//
//   Case 2 (Q4-Q6)   — multi-camera aggregation over the Porto synth
//                      (UNION / JOIN / ARGMAX), 60-day window, 60 s chunks
//   Case 3 (Q7-Q9)   — fraction of trees bloomed, 12 h window, 1-frame
//                      chunks (non-private objects, long window)
//   Case 4 (Q10-Q12) — red-light duration with everything but the light
//                      masked: rho = 0, exact release
//   Case 5 (Q13)     — stateful trajectory query, 10-minute chunks
//
// Accuracy is the §8.1 metric vs the same pipeline without Privid,
// mean ± 1 stddev over 1000 noise draws.
#include <map>

#include "analyst/executables.hpp"
#include "bench_util.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

void print_row(const char* q, const char* desc, const char* video,
               double rho, double truth, double privid_raw,
               const bench::AccuracyStats& acc) {
  std::printf("%-4s %-38s %-10s %8.1f %10.2f %10.2f  %5.1f%% +/- %.1f%%\n",
              q, desc, video, rho, truth, privid_raw,
              acc.mean_accuracy * 100, acc.stddev_accuracy * 100);
}

// ------------------------------------------------------------ Case 2

void run_porto(double* rows_printed) {
  (void)rows_printed;
  sim::PortoConfig cfg;
  cfg.n_days = 365;
  cfg.n_taxis = 150;
  cfg.n_cameras = 40;
  auto porto = std::make_shared<sim::PortoSynth>(cfg);
  const std::string window = std::to_string(cfg.n_days * 86400);
  // Q6 ranks cameras over a 60-day slice (the ranking is stable and the
  // 40-camera UNION over a full year would dominate bench runtime).
  const std::string q6_window = std::to_string(60 * 86400);

  engine::Privid sys(71);
  for (int cam = 0; cam < cfg.n_cameras; ++cam) {
    engine::CameraRegistration reg;
    reg.meta.camera_id = "porto" + std::to_string(cam);
    reg.meta.fps = 1;
    reg.meta.extent = {0, cfg.n_days * 86400.0};
    reg.content.porto = porto;
    reg.content.porto_camera = cam;
    reg.content.seed = 7000 + static_cast<std::uint64_t>(cam);
    reg.policy = {porto->camera_rho(cam), 4};
    reg.epsilon_budget = 50.0;
    sys.register_camera(std::move(reg));
  }
  sys.register_executable("taxis", analyst::make_taxi_reporter());

  std::string keys;
  for (int t = 0; t < cfg.n_taxis; ++t) {
    if (t) keys += ", ";
    keys += "\"" + sim::PortoSynth::plate_of(t) + "\"";
  }
  auto split_process = [&](const std::string& cam, const std::string& suffix,
                           const std::string& end) {
    return "SPLIT " + cam + " BEGIN 0 END " + end +
           " BY TIME 60 STRIDE 0 INTO c" + suffix + ";"
           "PROCESS c" + suffix +
           " USING taxis TIMEOUT 1 PRODUCING 3 ROWS "
           "WITH SCHEMA (plate:STRING=\"\", hod:NUMBER=0) INTO t" + suffix +
           ";";
  };
  engine::RunOptions opts = bench::run_options();
  opts.reveal_raw = true;

  // Q4: average working hours via UNION of two cameras.
  {
    auto r = sys.execute(
        split_process("porto10", "A", window) +
            split_process("porto27", "B", window) +
            "SELECT AVG(hours) RANGE 0 16 FROM "
            "(SELECT plate, day(chunk) AS day, SPAN(hod) RANGE 0 16 AS hours "
            " FROM tA UNION tB GROUP BY plate WITH KEYS [" + keys +
            "], day(chunk));",
        opts);
    double truth = porto->true_avg_working_hours(10, 27);
    auto acc = bench::noise_accuracy(r.releases[0].raw,
                                     r.releases[0].sensitivity, 1.0, truth);
    print_row("Q4", "avg taxi working hours (union x2)", "porto",
              porto->camera_rho(10), truth, r.releases[0].raw, acc);
  }
  // Q5: taxis seen at both cameras the same day (JOIN), per-day average.
  {
    auto r = sys.execute(
        split_process("porto10", "A", window) +
            split_process("porto27", "B", window) +
            "SELECT COUNT(*) FROM "
            "(SELECT plate, day(chunk) AS day, COUNT(*) AS n FROM tA "
            " GROUP BY plate WITH KEYS [" + keys + "], day(chunk)) JOIN "
            "(SELECT plate, day(chunk) AS day, COUNT(*) AS n FROM tB "
            " GROUP BY plate WITH KEYS [" + keys + "], day(chunk)) "
            "ON plate, day;",
        opts);
    double truth_daily = porto->true_avg_taxis_both(10, 27);
    double days = cfg.n_days;
    auto acc = bench::noise_accuracy(r.releases[0].raw / days,
                                     r.releases[0].sensitivity / days, 1.0,
                                     truth_daily);
    print_row("Q5", "avg taxis at 2 locations same day", "porto",
              porto->camera_rho(27), truth_daily, r.releases[0].raw / days,
              acc);
  }
  // Q6: camera with the highest traffic (ARGMAX across all cameras).
  {
    std::string q;
    std::string union_expr;
    for (int cam = 0; cam < cfg.n_cameras; ++cam) {
      std::string s = std::to_string(cam);
      q += split_process("porto" + s, s, q6_window);
      union_expr += (cam ? " UNION t" : "t") + s;
    }
    q += "SELECT ARGMAX(COUNT(*)) FROM " + union_expr + " GROUP BY camera;";
    auto r = sys.execute(q, opts);
    int truth_cam = porto->true_busiest_camera();
    bool correct =
        r.releases[0].argmax_key == "porto" + std::to_string(truth_cam);
    bench::AccuracyStats acc{correct ? 1.0 : 0.0, 0.0, 0.0};
    print_row("Q6", "busiest camera (argmax, all cams)", "porto", 0, truth_cam,
              correct ? truth_cam : -1, acc);
  }
}

// ------------------------------------------------------------ Case 3

void run_trees(const char* qname, const char* video, sim::Scenario scenario,
               double rho) {
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));
  engine::Privid sys(72);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 72;
  reg.policy = {300.0, 2};
  reg.epsilon_budget = 50.0;
  reg.masks.emplace("owner", engine::MaskEntry{scenario.recommended_mask,
                                               {rho, 2}});
  std::string cam = reg.meta.camera_id;
  sys.register_camera(std::move(reg));
  sys.register_executable("trees", analyst::make_tree_observer(0.02));

  engine::RunOptions opts = bench::run_options();
  opts.reveal_raw = true;
  auto r = sys.execute(
      "SPLIT " + cam +
          " BEGIN 21600 END 64800 BY TIME 0.1 STRIDE 0 WITH MASK owner "
          "INTO c;"
          "PROCESS c USING trees TIMEOUT 1 PRODUCING 1 ROWS "
          "WITH SCHEMA (percent:NUMBER=0) INTO t;"
          "SELECT AVG(range(percent, 0, 100)) FROM t;",
      opts);
  double truth = sim::bloomed_percent(scene->trees());
  auto acc = bench::noise_accuracy(r.releases[0].raw,
                                   r.releases[0].sensitivity, 1.0, truth);
  print_row(qname, "fraction of trees with leaves (%)", video, rho, truth,
            r.releases[0].raw, acc);
}

// ------------------------------------------------------------ Case 4

void run_red_light(const char* qname, const char* video,
                   sim::Scenario scenario) {
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));
  const auto& light = scene->lights().at(0);
  Mask all_but_light(scene->meta().width, scene->meta().height, 64, 36);
  all_but_light.mask_box(scene->meta().frame_box());
  for (int cy = 0; cy < 36; ++cy) {
    for (int cx = 0; cx < 64; ++cx) {
      if (all_but_light.cell_box(cx, cy).overlaps(light.box())) {
        all_but_light.set_cell(cx, cy, false);
      }
    }
  }
  engine::Privid sys(73);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 73;
  reg.policy = {300.0, 2};
  reg.epsilon_budget = 50.0;
  reg.masks.emplace("light_only", engine::MaskEntry{all_but_light, {0.0, 1}});
  std::string cam = reg.meta.camera_id;
  sys.register_camera(std::move(reg));
  sys.register_executable("red_timer", analyst::make_red_light_timer(0, 1.0));

  engine::RunOptions opts = bench::run_options();
  opts.reveal_raw = true;
  auto r = sys.execute(
      "SPLIT " + cam +
          " BEGIN 21600 END 64800 BY TIME 600 STRIDE 0 WITH MASK light_only "
          "INTO c;"
          "PROCESS c USING red_timer TIMEOUT 2 PRODUCING 1 ROWS "
          "WITH SCHEMA (red_sec:NUMBER=0) INTO t;"
          "SELECT AVG(range(red_sec, 0, 300)) FROM t;",
      opts);
  double truth = light.red_duration();
  auto acc = bench::noise_accuracy(r.releases[0].raw,
                                   r.releases[0].sensitivity, 1.0, truth);
  print_row(qname, "duration of red light (s)", video, 0, truth,
            r.releases[0].raw, acc);
}

// ------------------------------------------------------------ Case 5

void run_q13() {
  auto scenario = sim::make_campus(713, 12.0, 1.0);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));
  cv::DetectorConfig det;
  det.base_detect_prob = 0.8;
  auto trk = cv::TrackerConfig::sort(20, 2, 0.1);

  engine::Privid sys(74);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 74;
  reg.policy = {300.0, 2};
  reg.epsilon_budget = 50.0;
  reg.masks.emplace("owner", engine::MaskEntry{scenario.recommended_mask,
                                               {49.0, 2}});
  sys.register_camera(std::move(reg));
  sys.register_executable("s2n", analyst::make_trajectory_filter(det, trk));

  engine::RunOptions opts = bench::run_options();
  opts.reveal_raw = true;
  auto r = sys.execute(
      "SPLIT campus BEGIN 21600 END 64800 BY TIME 600 STRIDE 0 "
      "WITH MASK owner INTO c;"
      "PROCESS c USING s2n TIMEOUT 5 PRODUCING 8 ROWS "
      "WITH SCHEMA (matched:NUMBER=1) INTO t;"
      "SELECT SUM(range(matched, 0, 1)) FROM t;",
      opts);

  // "Original": the same logic, one continuous pass (no chunk boundaries).
  cv::Detector detector(det, 74);
  cv::Tracker tracker(trk);
  cv::FrameArena arena;
  std::map<int, std::pair<Box, Box>> extent;
  const Mask* mask = &scenario.recommended_mask;
  for (Seconds t = 21600; t < 64800; t += 1.0 / scene->meta().fps) {
    tracker.step(t, detector.detect_into(*scene, t, scene->meta().frame_at(t),
                                         mask, arena));
    tracker.for_each_active([&](const cv::ActiveTrack& rec) {
      auto [it, inserted] =
          extent.try_emplace(rec.track_id, rec.last_box, rec.last_box);
      if (!inserted) it->second.second = rec.last_box;
    });
  }
  double truth = 0;
  double h = scene->meta().height;
  for (const auto& rec : tracker.take_tracks()) {
    auto it = extent.find(rec.track_id);
    if (it == extent.end()) continue;
    if (it->second.first.cy() > 2 * h / 3 && it->second.second.cy() < h / 3) {
      truth += 1;
    }
  }
  auto acc = bench::noise_accuracy(r.releases[0].raw,
                                   r.releases[0].sensitivity, 1.0, truth);
  print_row("Q13", "# people south->north (stateful)", "campus", 49, truth,
            r.releases[0].raw, acc);
}

}  // namespace

int main() {
  bench::print_header("Table 3 - query case studies Q4-Q13");
  std::printf("%-4s %-38s %-10s %8s %10s %10s  %s\n", "Q#", "description",
              "video", "rho(s)", "Original", "Privid", "accuracy");
  bench::print_rule();

  double dummy = 0;
  run_porto(&dummy);
  run_trees("Q7", "campus", sim::make_campus(707, 12.0, 0.4), 48.9);
  run_trees("Q8", "highway", sim::make_highway(708, 12.0, 0.15), 372.0);
  run_trees("Q9", "urban", sim::make_urban(709, 12.0, 0.15), 200.0);
  run_red_light("Q10", "campus", sim::make_campus(710, 12.0, 0.05));
  run_red_light("Q11", "highway", sim::make_highway(711, 12.0, 0.05));
  run_red_light("Q12", "urban", sim::make_urban(712, 12.0, 0.05));
  run_q13();

  std::printf(
      "\nPaper accuracies: Q4 94.1%%, Q5 99.8%%, Q6 100%%, Q7-9 98-99.9%%,\n"
      "Q10-12 100%% (rho=0 exact), Q13 79.1%%. Expected shape: long windows\n"
      "and rho=0 masks give near-exact results; the stateful Q13 with a\n"
      "large range and short window is the least accurate.\n");
  return 0;
}
