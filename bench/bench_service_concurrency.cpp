// Multi-analyst service bench: 8 analysts, overlapping standing-style
// queries, cold vs warm.
//
// Wave 1 (cold): 8 analysts concurrently submit the *same* window over one
// camera. With the shared cache + single-flight dedup, the 8 queries must
// cost ~1x one query's PROCESS work — the acceptance gate is sandbox
// invocations < 1.5x the chunk count (leader computes, concurrent
// followers join the flight, later arrivals hit the cache).
// Wave 2 (warm): 8 more analysts replay the same window — every chunk is
// served from the cache, so the PROCESS delta must stay ~0.
// Wave 3 (extended): the window grows by half — the standing-query
// pattern of re-asking over a longer history. Chunk identity includes the
// chunk index (the per-chunk random tape is keyed by it), so reuse
// requires the same window anchor: the extension keeps BEGIN and computes
// only the new chunks.
//
// PRIVID_NUM_THREADS sizes the service pool; PRIVID_CACHE selects the
// cache mode (bench_all runs off and shared and records both — the dedup
// gates only bind under "shared": with the cache off, non-overlapping
// tasks legitimately recompute). Releases differ per analyst (private
// noise streams) but every analyst's *raw* aggregate must agree exactly.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/privid.hpp"

using namespace privid;

namespace {

constexpr double kChunkSeconds = 30.0;
constexpr double kWindow = 3600.0;          // one hour per wave
constexpr int kChunksPerWave = 120;         // kWindow / kChunkSeconds
constexpr int kAnalysts = 8;

std::shared_ptr<sim::Scene> scene_2h() {
  VideoMeta m;
  m.camera_id = "cam";
  m.fps = 2;
  m.width = 1280;
  m.height = 720;
  m.extent = {0, 2 * kWindow};
  auto s = std::make_shared<sim::Scene>(m);
  const int entities = 400;
  for (int i = 0; i < entities; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.1);
    double t0 = 10.0 + (2 * kWindow / entities) * i;
    e.appearances.push_back(sim::Trajectory::linear(
        t0, t0 + 90, Box{0, 300, 60, 120}, Box{1200, 300, 60, 120}));
    s->add_entity(e);
  }
  return s;
}

// Samples a detection pass every 0.5 s of its chunk (60 per chunk): enough
// work that the cold wave measures real PROCESS cost, counted so the
// dedup gate is exact.
engine::Executable sampling_counter(std::shared_ptr<std::atomic<long>> n) {
  return [n](const engine::ChunkView& view) {
    n->fetch_add(1, std::memory_order_relaxed);
    engine::ExecOutput out;
    cv::DetectorConfig det;
    det.base_detect_prob = 0.9;
    det.false_positives_per_frame = 0;
    double seen = 0;
    for (Seconds t = view.time().begin; t < view.time().end; t += 0.5) {
      seen += static_cast<double>(view.detect(det, t).size());
    }
    out.rows.push_back({Value(seen)});
    out.simulated_runtime = 0.1;
    return out;
  };
}

std::string window_query(double begin, double end) {
  return "SPLIT cam BEGIN " + std::to_string(begin) + " END " +
         std::to_string(end) + " BY TIME " + std::to_string(kChunkSeconds) +
         " STRIDE 0 INTO c;"
         "PROCESS c USING counter TIMEOUT 1 PRODUCING 1 ROWS "
         "WITH SCHEMA (n:NUMBER=0) INTO t;"
         "SELECT SUM(range(n, 0, 500)) FROM t;";
}

struct Wave {
  double wall_seconds = 0;
  long invocations = 0;  // sandbox runs this wave triggered
  double raw_sum = 0;    // any analyst's raw aggregate (all must agree)
  bool raw_agree = true;
};

Wave run_wave(service::QueryService* service, const std::string& prefix,
              double begin, double end,
              const std::shared_ptr<std::atomic<long>>& invocations) {
  engine::RunOptions opts;
  opts.reveal_raw = true;
  opts.charge_budget = false;  // owner-side replay: the bench reruns windows

  Wave wave;
  long before = invocations->load();
  auto start = std::chrono::steady_clock::now();
  std::vector<service::QueryTicket> tickets;
  tickets.reserve(kAnalysts);
  for (int i = 0; i < kAnalysts; ++i) {
    tickets.push_back(service->submit(prefix + std::to_string(i),
                                      window_query(begin, end), opts));
  }
  bool first = true;
  for (auto& t : tickets) {
    engine::QueryResult r = service->wait(t);
    double raw = r.releases.at(0).raw;
    if (first) {
      wave.raw_sum = raw;
      first = false;
    } else if (raw != wave.raw_sum) {
      wave.raw_agree = false;
    }
  }
  auto stop = std::chrono::steady_clock::now();
  wave.wall_seconds = std::chrono::duration<double>(stop - start).count();
  wave.invocations = invocations->load() - before;
  return wave;
}

}  // namespace

int main() {
  bench::print_header(
      "Service concurrency - 8 analysts, overlapping queries, cold vs warm");

  engine::RunOptions opts = bench::run_options();
  engine::CacheMode mode = engine::resolve_cache_mode(opts.cache);
  const char* mode_name = mode == engine::CacheMode::kShared    ? "shared"
                          : mode == engine::CacheMode::kPerQuery ? "per-query"
                                                                 : "off";

  auto invocations = std::make_shared<std::atomic<long>>(0);
  engine::Privid sys(123);
  auto scene = scene_2h();
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = 31;
  reg.policy = {60.0, 2};
  reg.epsilon_budget = 1000.0;
  sys.register_camera(std::move(reg));
  sys.register_executable("counter", sampling_counter(invocations));

  service::QueryService::Config cfg;
  cfg.num_threads = opts.num_threads;
  cfg.cache = opts.cache;
  auto& service = sys.configure_service(cfg);

  Wave cold = run_wave(&service, "cold", 0, kWindow, invocations);
  bench::print_obs_summary("cold");
  Wave warm = run_wave(&service, "warm", 0, kWindow, invocations);
  bench::print_obs_summary("warm");
  Wave extended = run_wave(&service, "ext", 0, 1.5 * kWindow, invocations);
  service.drain();
  bench::print_obs_summary("extended");
  bench::print_rule();

  auto stats = service.stats();
  std::printf("cache mode:       %s (threads=%zu)\n", mode_name,
              opts.num_threads);
  std::printf("analysts/wave:    %d (identical window, %d chunks)\n",
              kAnalysts, kChunksPerWave);
  std::printf("cold wave:        %.3f s, %ld sandbox runs, raw %.0f\n",
              cold.wall_seconds, cold.invocations, cold.raw_sum);
  std::printf("warm wave:        %.3f s, %ld sandbox runs, raw %.0f\n",
              warm.wall_seconds, warm.invocations, warm.raw_sum);
  std::printf("extended wave:    %.3f s, %ld sandbox runs, raw %.0f\n",
              extended.wall_seconds, extended.invocations, extended.raw_sum);
  std::printf("scheduler:        %llu tasks in %llu rounds, %llu dropped\n",
              static_cast<unsigned long long>(stats.scheduler.tasks_run),
              static_cast<unsigned long long>(stats.scheduler.rounds),
              static_cast<unsigned long long>(stats.scheduler.tasks_dropped));
  std::printf("dedup:            %llu leaders, %llu followers, "
              "%llu fallbacks\n",
              static_cast<unsigned long long>(stats.dedup.leaders),
              static_cast<unsigned long long>(stats.dedup.followers),
              static_cast<unsigned long long>(stats.dedup.fallbacks));

  // Every analyst of every wave must compute the same raw aggregate.
  if (!cold.raw_agree || !warm.raw_agree || !extended.raw_agree ||
      warm.raw_sum != cold.raw_sum) {
    std::printf("FAIL: analysts disagree on the raw aggregate\n");
    return 1;
  }
  if (mode == engine::CacheMode::kShared) {
    // Acceptance gate: 8 identical concurrent queries must cost < 1.5x one
    // query's PROCESS work (single-flight + cache, vs 8x without).
    if (cold.invocations >= kChunksPerWave * 3 / 2) {
      std::printf("FAIL: cold wave ran %ld sandbox invocations "
                  "(>= 1.5x %d chunks): dedup is not working\n",
                  cold.invocations, kChunksPerWave);
      return 1;
    }
    // Replaying the same window must be pure cache hits.
    if (warm.invocations > kChunksPerWave / 10) {
      std::printf("FAIL: warm wave recomputed %ld chunks\n",
                  warm.invocations);
      return 1;
    }
    // The extended window computes only its ~60 new chunks, not all 180.
    if (extended.invocations >= kChunksPerWave * 3 / 4) {
      std::printf("FAIL: extended wave recomputed %ld chunks "
                  "(expected ~%d new ones)\n",
                  extended.invocations, kChunksPerWave / 2);
      return 1;
    }
  }
  return 0;
}
