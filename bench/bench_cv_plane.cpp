// CV data-plane micro-bench: the batch/SoA pipeline vs the AoS scalar
// reference it replaced.
//
// The DetectionBatch rewrite turned the per-frame CV hot path — detector
// emit, NMS, IoU + cosine cost matrices, Kalman predict/update — from
// one heap-backed `Detection` struct per object and one `KalmanBox` per
// track into contiguous SoA columns consumed by dense kernels
// (cv/kernels.hpp), with a reusable FrameArena so a steady-state frame
// allocates nothing. Both pipelines are in the library (the scalar one as
// cv/scalar_tracker.hpp + Detector::detect), run here over the same
// deterministic detector tape, so the comparison is live, not a number
// in a file.
//
// In-binary gates (exit non-zero on failure):
//   - batch pipeline throughput >= 2x the scalar reference (the
//     acceptance bar for the rewrite)
//   - steady-state allocations   == 0 per frame (detector + tracker,
//     after warm-up; counted via global operator new)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "cv/detector.hpp"
#include "cv/scalar_tracker.hpp"
#include "cv/tracker.hpp"
#include "sim/scene.hpp"
#include "sim/trajectory.hpp"

// ----------------------------------------------------------------------
// Global allocation counter: every operator new in this binary ticks it.
static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace privid {
namespace {

// A steady association-heavy scene: a dense grid of stationary entities,
// all present for the whole clip, separated so no pair overlaps (no NMS
// suppression, no identity switches). With zero false positives, every
// track is born in the first frames and never dies — so past warm-up the
// pipeline is pure per-frame work (detector emit + O(n^2) association),
// the shape the >= 2x gate targets. The grid is dense enough that the
// cost matrices dominate, like the paper's crowded-campus videos.
sim::Scene bench_scene(int cols = 24, int rows = 36) {
  VideoMeta m;
  m.camera_id = "bench";
  m.fps = 10;
  m.width = 1280;
  m.height = 1080;
  m.extent = {0, 3600};
  sim::Scene s(m);
  for (int i = 0; i < cols * rows; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.0);
    e.appearance_feature[static_cast<std::size_t>(i) % 8] = 1.0;
    e.appearance_feature[static_cast<std::size_t>(i / 8) % 8] += 0.5;
    Box at{5.0 + 53.0 * (i % cols), 2.0 + 25.5 * (i / cols), 60.0, 40.0};
    e.appearances.push_back(sim::Trajectory::linear(0, 3600, at, at));
    s.add_entity(e);
  }
  return s;
}

cv::DetectorConfig bench_detector() {
  cv::DetectorConfig det;
  det.base_detect_prob = 1.0;  // clamps to max_detect_prob
  det.false_positives_per_frame = 0;
  return det;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Measured {
  double secs = 0;
  std::uint64_t allocs = 0;
};

template <typename Fn>
Measured measure(Fn&& fn) {
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  Measured m;
  m.secs = seconds_since(t0);
  m.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  return m;
}

}  // namespace
}  // namespace privid

int main() {
  using namespace privid;
  const int kWarmupFrames = 50;
  const int kWindowFrames = 100;  // alloc-gate measurement window
  const int kMaxWindows = 5;
  const int kBenchFrames = 300;
  const std::uint64_t kSeed = 97;

  sim::Scene scene = bench_scene();
  cv::DetectorConfig det_cfg = bench_detector();
  cv::TrackerConfig trk_cfg = cv::TrackerConfig::deepsort(0.4, 0.2, 64, 2);

  std::printf("cv data-plane micro-bench: %zu entities, %d frames\n",
              scene.entities().size(), kBenchFrames);

  // ---- 1. throughput: batch vs the retained scalar reference ----------
  // Fresh trackers, same detector tape: both pipelines see byte-identical
  // detections frame for frame, so the confirmed-track counts must agree
  // (the byte-level equivalence lives in tests/test_cv_batch.cpp; this is
  // the bench's cheap cross-check that it measured the same work).
  std::size_t scalar_tracks = 0, batch_tracks = 0;
  Measured scalar_m = measure([&] {
    cv::Detector d(det_cfg, kSeed);
    cv::ScalarTracker trk(trk_cfg);
    for (int f = 0; f < kBenchFrames; ++f) {
      Seconds t = scene.meta().time_of(f);
      trk.step(t, d.detect(scene, t, f, nullptr));
    }
    scalar_tracks = trk.all_tracks().size();
  });
  Measured batch_m = measure([&] {
    cv::Detector d(det_cfg, kSeed);
    cv::Tracker trk(trk_cfg);
    cv::FrameArena a;
    for (int f = 0; f < kBenchFrames; ++f) {
      Seconds t = scene.meta().time_of(f);
      trk.step(t, d.detect_into(scene, t, f, nullptr, a));
    }
    batch_tracks = trk.take_tracks().size();
  });
  if (batch_tracks != scalar_tracks) {
    std::printf("FAIL: track counts diverged (batch %zu vs scalar %zu)\n",
                batch_tracks, scalar_tracks);
    return 1;
  }
  const double scalar_fps = kBenchFrames / scalar_m.secs;
  const double batch_fps = kBenchFrames / batch_m.secs;
  std::printf("pipeline  scalar : %10.0f frames/s  (%llu allocs)\n",
              scalar_fps, static_cast<unsigned long long>(scalar_m.allocs));
  std::printf("pipeline   batch : %10.0f frames/s  (%llu allocs)  %.2fx\n",
              batch_fps, static_cast<unsigned long long>(batch_m.allocs),
              batch_fps / scalar_fps);

  // ---- 2. steady-state allocations (batch pipeline) -------------------
  // Scratch capacities are sticky but the per-frame detection count is
  // stochastic, so a record-high frame shortly after warm-up can still
  // grow a buffer once (then geometric growth covers every later frame).
  // Steady state is reached when a full window allocates nothing; gate on
  // finding such a window, not on the warm-up tail.
  cv::Detector detector(det_cfg, kSeed);
  cv::Tracker tracker(trk_cfg);
  cv::FrameArena arena;
  int frame = 0;
  auto run_frames = [&](int n) {
    for (int k = 0; k < n; ++k, ++frame) {
      Seconds t = scene.meta().time_of(frame);
      tracker.step(t, detector.detect_into(scene, t, frame, nullptr, arena));
    }
  };
  run_frames(kWarmupFrames);
  std::uint64_t window_allocs = 0;
  bool clean_window = false;
  for (int w = 0; w < kMaxWindows && !clean_window; ++w) {
    Measured steady = measure([&] { run_frames(kWindowFrames); });
    window_allocs = steady.allocs;
    clean_window = steady.allocs == 0;
    std::printf("steady-state w%d : %llu allocs over %d frames\n", w,
                static_cast<unsigned long long>(steady.allocs),
                kWindowFrames);
  }

  // ---- gates ----------------------------------------------------------
  int failures = 0;
  if (!clean_window) {
    std::printf("FAIL: no allocation-free %d-frame window (last saw %llu)\n",
                kWindowFrames, static_cast<unsigned long long>(window_allocs));
    ++failures;
  }
  if (batch_fps < 2.0 * scalar_fps) {
    std::printf("FAIL: batch pipeline %.2fx scalar (< 2x gate)\n",
                batch_fps / scalar_fps);
    ++failures;
  }
  if (failures == 0) std::printf("all cv-plane gates passed\n");
  return failures == 0 ? 0 : 1;
}
