// Shared helpers for the paper-reproduction benches.
//
// Every bench regenerates one table or figure of the paper's evaluation.
// Scenes are scaled-down synthetic analogues (see DESIGN.md §1); absolute
// numbers differ from the paper but the shape — who wins, roughly by what
// factor, where crossovers fall — is what each bench reports.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engine/executor.hpp"
#include "obs/metrics.hpp"

namespace privid::bench {

// PROCESS-phase parallelism for the bench run, from the PRIVID_NUM_THREADS
// env var (0 = all hardware threads; unset/empty = 1, the sequential
// baseline). bench_all runs every bench at both settings so
// BENCH_results.json records the 1-thread and N-thread timings
// side by side; releases are bit-identical either way, so accuracy numbers
// do not move.
inline std::size_t env_num_threads() {
  const char* v = std::getenv("PRIVID_NUM_THREADS");
  if (!v || !*v) return 1;
  char* end = nullptr;
  unsigned long n = std::strtoul(v, &end, 10);
  // Garbage, negatives (strtoul wraps '-1'), and absurd counts all fall
  // back to the sequential default rather than spawning a bogus pool.
  if (end == v || *end != '\0' || n > 1024) return 1;
  return static_cast<std::size_t>(n);
}

// RunOptions::cache is left at kDefault, which resolves from the
// PRIVID_CACHE env var ("off" when unset) — bench_all uses that to replay
// cache-sensitive benches at off and shared, and CI's cache-equivalence
// job to byte-diff bench output across modes. Caching never moves
// accuracy numbers; only wall time.
inline engine::RunOptions run_options() {
  engine::RunOptions opts;
  opts.num_threads = env_num_threads();
  return opts;
}

// The §8.1 accuracy metric: run the query once (raw + sensitivity), then
// sample the Laplace noise `samples` times and report mean accuracy ± 1
// standard deviation relative to `reference` (the no-Privid baseline).
struct AccuracyStats {
  double mean_accuracy = 0;
  double stddev_accuracy = 0;
  double mean_abs_noise = 0;
};

inline AccuracyStats noise_accuracy(double raw, double sensitivity,
                                    double epsilon, double reference,
                                    int samples = 1000,
                                    std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<double> accs;
  double abs_noise = 0;
  double b = epsilon > 0 ? sensitivity / epsilon : 0.0;
  for (int i = 0; i < samples; ++i) {
    double noisy = raw + rng.laplace(0.0, b);
    accs.push_back(relative_accuracy(noisy, reference));
    abs_noise += std::abs(noisy - raw);
  }
  return {mean(accs), stddev(accs),
          abs_noise / static_cast<double>(samples)};
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

// Prints the registry's current obs snapshot for one bench leg: task
// latency percentiles, per-tier cache hit rates and the single-flight
// dedup rate, plus the machine-readable OBS_SNAPSHOT_JSON line that
// bench_all.sh greps into BENCH_results.json ("obs" field per entry).
// Counters are process-cumulative, so per-leg deltas come from diffing
// the snapshots bench_all records — the human block here is a running
// total labelled with the leg that just finished.
inline void print_obs_summary(const char* leg) {
  obs::Snapshot s = obs::Registry::global().snapshot();
  std::printf("obs [%s]:\n", leg);
  for (const char* h : {"task.process", "sched.queue_wait", "dedup.wait"}) {
    const obs::Snapshot::HistogramRow* row = s.histogram_row(h);
    if (!row || row->count == 0) continue;
    std::printf("  %-18s %8llu obs, p50 %9.3f ms, p99 %9.3f ms, "
                "max %9.3f ms\n",
                h, static_cast<unsigned long long>(row->count), row->p50_ms,
                row->p99_ms, row->max_ms);
  }
  const std::uint64_t hits = s.counter_value("cache.hits");
  const std::uint64_t misses = s.counter_value("cache.misses");
  const std::uint64_t disk_hits = s.counter_value("cache.disk.hits");
  if (hits + misses > 0) {
    const double lookups = static_cast<double>(hits + misses);
    std::printf("  cache:             mem hit %5.1f%%, disk hit %5.1f%%, "
                "miss %5.1f%% (%llu lookups)\n",
                100.0 * static_cast<double>(hits - disk_hits) / lookups,
                100.0 * static_cast<double>(disk_hits) / lookups,
                100.0 * static_cast<double>(misses) / lookups,
                static_cast<unsigned long long>(hits + misses));
  }
  const std::uint64_t leaders = s.counter_value("dedup.leaders");
  const std::uint64_t followers = s.counter_value("dedup.followers");
  if (leaders + followers > 0) {
    std::printf("  dedup:             %5.1f%% of arrivals joined a flight "
                "(%llu leaders, %llu followers)\n",
                100.0 * static_cast<double>(followers) /
                    static_cast<double>(leaders + followers),
                static_cast<unsigned long long>(leaders),
                static_cast<unsigned long long>(followers));
  }
  std::printf("OBS_SNAPSHOT_JSON %s\n", s.json(/*compact=*/true).c_str());
}

}  // namespace privid::bench
