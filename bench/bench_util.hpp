// Shared helpers for the paper-reproduction benches.
//
// Every bench regenerates one table or figure of the paper's evaluation.
// Scenes are scaled-down synthetic analogues (see DESIGN.md §1); absolute
// numbers differ from the paper but the shape — who wins, roughly by what
// factor, where crossovers fall — is what each bench reports.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace privid::bench {

// The §8.1 accuracy metric: run the query once (raw + sensitivity), then
// sample the Laplace noise `samples` times and report mean accuracy ± 1
// standard deviation relative to `reference` (the no-Privid baseline).
struct AccuracyStats {
  double mean_accuracy = 0;
  double stddev_accuracy = 0;
  double mean_abs_noise = 0;
};

inline AccuracyStats noise_accuracy(double raw, double sensitivity,
                                    double epsilon, double reference,
                                    int samples = 1000,
                                    std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<double> accs;
  double abs_noise = 0;
  double b = epsilon > 0 ? sensitivity / epsilon : 0.0;
  for (int i = 0; i < samples; ++i) {
    double noisy = raw + rng.laplace(0.0, b);
    accs.push_back(relative_accuracy(noisy, reference));
    abs_noise += std::abs(noisy - raw);
  }
  return {mean(accs), stddev(accs),
          abs_noise / static_cast<double>(samples)};
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace privid::bench
