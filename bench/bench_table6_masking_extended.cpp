// Table 6 / Fig. 11 (Appendix F.1): masking effectiveness across the
// extended dataset — our three videos plus analogues of the BlazeIt and
// MIRIS videos. For each scene, run Algorithm 2 and report the mask that
// reduces max persistence by >= ~4x: % of grid boxes masked, persistence
// before/after, and % identities retained.
#include "bench_util.hpp"
#include "maskopt/greedy.hpp"
#include "maskopt/heatmap.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

void report(const char* dataset, const char* name,
            const sim::Scene& scene, TimeInterval window) {
  constexpr int kCols = 32, kRows = 18;
  auto hm = maskopt::build_heatmap(scene, window, kCols, kRows, 1.0);
  auto ordering = maskopt::greedy_mask_ordering(hm, 0);
  double before = ordering.steps.front().max_persistence;
  // Pick the prefix achieving at least 4x reduction (or the best
  // available), mirroring the paper's "at least an order of magnitude in
  // frames" row selection.
  std::size_t chosen = ordering.prefix_for_target(before / 4.0);
  const auto& step = ordering.steps[chosen];
  double pct_masked =
      100.0 * static_cast<double>(chosen) / (kCols * kRows);
  double reduction =
      step.max_persistence > 0 ? before / step.max_persistence : 999.0;
  std::printf("%-8s %-14s %10.1f%% %12.0f %12.0f %9.2fx %12.1f%%\n", dataset,
              name, pct_masked, before, step.max_persistence, reduction,
              step.identities_retained * 100);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 6 - masking effectiveness on the extended dataset");
  std::printf("%-8s %-14s %11s %12s %12s %10s %13s\n", "Dataset", "Video",
              "% masked", "max before", "max after", "change",
              "% identities");
  bench::print_rule();

  TimeInterval window{6 * 3600.0, 6 * 3600.0 + 2 * 3600.0};
  {
    auto s = sim::make_campus(601, 2.0, 0.5);
    report("Privid", "campus", s.scene, window);
  }
  {
    auto s = sim::make_highway(602, 2.0, 0.2);
    report("Privid", "highway", s.scene, window);
  }
  {
    auto s = sim::make_urban(603, 2.0, 0.2);
    report("Privid", "urban", s.scene, window);
  }
  std::uint64_t seed = 610;
  for (const auto& name : sim::extended_scene_names()) {
    auto s = sim::make_extended(name, seed++, 2.0, 0.4);
    const char* dataset =
        (name == "grand-canal" || name == "venice-rialto" || name == "taipei")
            ? "BlazeIt"
            : "Miris";
    report(dataset, name.c_str(), s.scene, window);
  }
  std::printf(
      "\nPaper: every video admits a mask cutting max persistence 4.3x-48x\n"
      "while retaining 75-99%% of identities (Table 6). Expected shape:\n"
      "small masked fractions, large persistence reductions, high "
      "retention.\n");
  return 0;
}
