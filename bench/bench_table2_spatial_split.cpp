// Table 2: spatial splitting (§7.2) reduces the per-chunk output range.
//
// Paper row format: Video | Max(frame) | Max(region) | Reduction
// Paper values: campus 3/6(sic, printed transposed: 6 frame vs 3 region ->
// 2.00x), highway 40/23 (1.74x), urban 37/16 (2.25x).
//
// We measure, per video: the maximum number of objects present in any one
// chunk over the whole frame, vs the maximum over any (chunk, region) cell
// of the owner's region scheme. Noise is proportional to this range, so
// the ratio is the noise reduction splitting buys.
#include <algorithm>
#include <map>
#include <set>

#include "bench_util.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

// Max unique entities visible during any chunk, optionally per region.
std::pair<std::size_t, std::size_t> chunk_maxima(const sim::Scene& scene,
                                                 const RegionScheme& regions,
                                                 TimeInterval window,
                                                 Seconds chunk) {
  std::size_t max_frame = 0, max_region = 0;
  for (Seconds t0 = window.begin; t0 < window.end; t0 += chunk) {
    std::map<int, std::size_t> per_region;
    std::size_t total = 0;
    // Entities visible at any sample of the chunk.
    std::set<std::size_t> seen;
    std::map<int, std::set<std::size_t>> seen_region;
    for (Seconds t = t0; t < std::min(t0 + chunk, window.end); t += 1.0) {
      for (std::size_t i : scene.visible_at(t)) {
        seen.insert(i);
        auto b = scene.entities()[i].box_at(t);
        if (b) seen_region[regions.region_of(*b)].insert(i);
      }
    }
    total = seen.size();
    max_frame = std::max(max_frame, total);
    for (const auto& [r, s] : seen_region) {
      if (r >= 0) max_region = std::max(max_region, s.size());
    }
  }
  return {max_frame, max_region};
}

}  // namespace

int main() {
  bench::print_header("Table 2 - spatial splitting range reduction");
  std::printf("%-10s %12s %12s %12s\n", "Video", "Max(frame)", "Max(region)",
              "Reduction");
  bench::print_rule();

  struct Case {
    const char* name;
    sim::Scenario s;
  };
  std::vector<Case> cases;
  cases.push_back({"campus", sim::make_campus(201, 2.0, 1.0)});
  cases.push_back({"highway", sim::make_highway(202, 2.0, 0.5)});
  cases.push_back({"urban", sim::make_urban(203, 2.0, 0.5)});

  for (auto& c : cases) {
    TimeInterval window{6 * 3600.0, 8 * 3600.0};
    auto [mf, mr] = chunk_maxima(c.s.scene, c.s.regions, window, 30.0);
    double reduction = mr > 0 ? static_cast<double>(mf) / mr : 0.0;
    std::printf("%-10s %12zu %12zu %11.2fx\n", c.name, mf, mr, reduction);
  }
  std::printf(
      "\nPaper: campus 2.00x, highway 1.74x, urban 2.25x.\n"
      "Expected shape: splitting by crosswalk/direction cuts the per-chunk\n"
      "range (and hence the required noise) by roughly 2x.\n");
  return 0;
}
