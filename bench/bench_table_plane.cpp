// Table data-plane micro-benches: columnar Table vs the row-era layout.
//
// The columnar rewrite replaced `std::vector<Row>` (one heap-allocated
// variant per cell) with typed per-column vectors + interned string
// dictionaries. This bench keeps a faithful copy of the row-era container
// and measures both on the data plane's hot shapes:
//
//   1. append throughput (rows/s) through the validating cell API,
//   2. filter + group-by + SUM scan throughput (rows/s),
//   3. PROCESS-assembly: per-chunk slab splice vs row-at-a-time moves,
//   4. allocation counts for the same workloads (global operator new).
//
// In-binary gates (exit non-zero on failure), so CI's bench-trend leg
// catches a data-plane regression without parsing output:
//   - numeric append throughput  >= 2x row-era (the acceptance bar; the
//     dominant engine shape — count-style queries emit NUMBER columns)
//   - scan throughput            >= 2x row-era (measured ~10x)
//   - numeric append allocations <= half the row-era count
//   - string append / assemble   >= 1x row-era (no regression; string
//     ingest pays the interning hash per cell, so its win is the 10x scan
//     and the deduplicated footprint, not raw append speed)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "table/aggregate.hpp"
#include "table/ops.hpp"
#include "table/table.hpp"

// ----------------------------------------------------------------------
// Global allocation counter: every operator new in this binary ticks it.
static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace privid {
namespace {

// ------------------------------------------------------ row-era layout
// A faithful copy of the pre-columnar Table: schema-validating append
// into std::vector<Row>. Kept here (not in the library) purely as the
// measurement baseline.
class RowTable {
 public:
  explicit RowTable(Schema schema) : schema_(std::move(schema)) {}

  void append(Row row) {
    if (row.size() != schema_.size()) throw TypeError("arity");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].type() != schema_.column(i).type) throw TypeError("dtype");
    }
    rows_.push_back(std::move(row));
  }
  void append_unchecked(Row row) { rows_.push_back(std::move(row)); }
  std::size_t row_count() const { return rows_.size(); }
  const Row& row(std::size_t i) const { return rows_[i]; }
  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

Schema plane_schema() {
  return Schema({{"plate", DType::kString, Value(std::string())},
                 {"color", DType::kString, Value(std::string())},
                 {"speed", DType::kNumber, Value(0.0)}});
}

struct Workload {
  std::vector<std::string> plates;  // duplicate-heavy pool
  std::vector<const char*> colors;
  std::vector<std::size_t> plate_of;  // per row
  std::vector<std::size_t> color_of;
  std::vector<double> speed_of;
};

Workload make_workload(std::size_t n_rows) {
  Workload w;
  for (int i = 0; i < 1000; ++i) w.plates.push_back("P-" + std::to_string(i));
  w.colors = {"RED", "WHITE", "SILVER", "BLACK"};
  Rng rng(7);
  w.plate_of.reserve(n_rows);
  w.color_of.reserve(n_rows);
  w.speed_of.reserve(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    w.plate_of.push_back(static_cast<std::size_t>(rng.uniform_int(0, 999)));
    w.color_of.push_back(static_cast<std::size_t>(rng.uniform_int(0, 3)));
    w.speed_of.push_back(rng.uniform(0, 120));
  }
  return w;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Measured {
  double secs = 0;
  std::uint64_t allocs = 0;
};

template <typename Fn>
Measured measure(Fn&& fn) {
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  Measured m;
  m.secs = seconds_since(t0);
  m.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
  return m;
}

// Row-era filter + group-by + SUM: the old select_rows/group loops.
double row_scan(const RowTable& t, double threshold) {
  std::size_t speed = 2, color = 1;
  RowTable filtered(t.schema());
  for (std::size_t r = 0; r < t.row_count(); ++r) {
    if (t.row(r)[speed].as_number() < threshold) {
      filtered.append_unchecked(t.row(r));
    }
  }
  const char* keys[] = {"RED", "WHITE", "SILVER", "BLACK"};
  double total = 0;
  for (const char* k : keys) {
    std::vector<Value> vals;
    for (std::size_t r = 0; r < filtered.row_count(); ++r) {
      if (filtered.row(r)[color] == Value(k)) {
        vals.push_back(filtered.row(r)[speed]);
      }
    }
    total += aggregate_column(AggFunc::kSum, vals);
  }
  return total;
}

// Columnar filter + group-by + SUM through the library's operators.
double columnar_scan(const Table& t, double threshold) {
  std::size_t speed = 2;
  const std::vector<double>& col = t.numbers(speed);
  Table filtered = select_rows(
      t, [&](const RowView& r) { return col[r.index()] < threshold; });
  auto groups = group_by_keys(
      filtered, {"color"},
      {{Value("RED"), Value("WHITE"), Value("SILVER"), Value("BLACK")}});
  double total = 0;
  for (const auto& g : groups) {
    total += aggregate_rows(AggFunc::kSum, filtered, "speed", g.rows);
  }
  return total;
}

}  // namespace
}  // namespace privid

int main() {
  using namespace privid;
  const std::size_t kRows = 1'000'000;
  const std::size_t kSlabRows = 3;  // typical per-chunk output
  Workload w = make_workload(kRows);

  std::printf("table data-plane micro-bench: %zu rows\n", kRows);

  // ---- 0. numeric append (fig-bench shape: PROCESS emits numbers) ----
  Schema num_schema({{"seen", DType::kNumber, Value(0.0)},
                     {"speed", DType::kNumber, Value(0.0)}});
  RowTable row_num(num_schema);
  Measured row_num_append = measure([&] {
    for (std::size_t i = 0; i < kRows; ++i) {
      row_num.append({Value(1.0), Value(w.speed_of[i])});
    }
  });
  Table col_num(num_schema);
  Measured col_num_append = measure([&] {
    col_num.reserve_rows(kRows);
    for (std::size_t base = 0; base < kRows; base += 1024) {
      const std::size_t n = std::min<std::size_t>(1024, kRows - base);
      ColumnSlab batch(num_schema);
      batch.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        batch.append_number(0, 1.0);
        batch.append_number(1, w.speed_of[base + k]);
        batch.finish_row();
      }
      col_num.append_slab(batch, {});
    }
  });
  const double row_num_rps = kRows / row_num_append.secs;
  const double col_num_rps = kRows / col_num_append.secs;
  std::printf("append-num  row: %10.0f rows/s  (%llu allocs)\n", row_num_rps,
              static_cast<unsigned long long>(row_num_append.allocs));
  std::printf("append-num col.: %10.0f rows/s  (%llu allocs)  %.2fx\n",
              col_num_rps,
              static_cast<unsigned long long>(col_num_append.allocs),
              col_num_rps / row_num_rps);

  // ---- 1. append throughput (each plane's native ingest path) --------
  // Row era: materialize a Row of Values and push it (that IS the row
  // store's format). Columnar: typed appends into a batch slab spliced
  // into the table — the PROCESS pipeline's write path.
  RowTable row_table(plane_schema());
  Measured row_append = measure([&] {
    for (std::size_t i = 0; i < kRows; ++i) {
      row_table.append({Value(w.plates[w.plate_of[i]]),
                        Value(w.colors[w.color_of[i]]),
                        Value(w.speed_of[i])});
    }
  });
  Table col_table(plane_schema());
  const std::size_t kBatch = 1024;
  Measured col_append = measure([&] {
    col_table.reserve_rows(kRows);
    Schema slab_schema = plane_schema();
    for (std::size_t base = 0; base < kRows; base += kBatch) {
      const std::size_t n = std::min(kBatch, kRows - base);
      ColumnSlab slab(slab_schema);
      slab.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = base + k;
        slab.append_string(0, w.plates[w.plate_of[i]]);
        slab.append_string(1, w.colors[w.color_of[i]]);
        slab.append_number(2, w.speed_of[i]);
        slab.finish_row();
      }
      col_table.append_slab(slab, {});
    }
  });
  const double row_append_rps = kRows / row_append.secs;
  const double col_append_rps = kRows / col_append.secs;
  std::printf("append      row: %10.0f rows/s  (%llu allocs)\n",
              row_append_rps,
              static_cast<unsigned long long>(row_append.allocs));
  std::printf("append  columnar: %10.0f rows/s  (%llu allocs)  %.2fx\n",
              col_append_rps,
              static_cast<unsigned long long>(col_append.allocs),
              col_append_rps / row_append_rps);

  // ---- 2. filter + group-by + SUM scan -------------------------------
  double row_sum = 0, col_sum = 0;
  Measured row_scan_m = measure([&] { row_sum = row_scan(row_table, 60.0); });
  Measured col_scan_m =
      measure([&] { col_sum = columnar_scan(col_table, 60.0); });
  if (row_sum != col_sum) {
    std::printf("FAIL: scan results differ (%f vs %f)\n", row_sum, col_sum);
    return 1;
  }
  const double row_scan_rps = kRows / row_scan_m.secs;
  const double col_scan_rps = kRows / col_scan_m.secs;
  std::printf("scan        row: %10.0f rows/s  (%llu allocs)\n", row_scan_rps,
              static_cast<unsigned long long>(row_scan_m.allocs));
  std::printf("scan    columnar: %10.0f rows/s  (%llu allocs)  %.2fx\n",
              col_scan_rps,
              static_cast<unsigned long long>(col_scan_m.allocs),
              col_scan_rps / row_scan_rps);

  // ---- 3. PROCESS assembly: slab splice vs row moves -----------------
  const std::size_t kChunks = kRows / kSlabRows;
  Schema full = plane_schema()
                    .with_column({kChunkColumn, DType::kNumber, Value(0.0)})
                    .with_column({"camera", DType::kString,
                                  Value(std::string())});
  Measured row_assemble = measure([&] {
    RowTable out(full);
    for (std::size_t c = 0; c < kChunks; ++c) {
      for (std::size_t k = 0; k < kSlabRows; ++k) {
        const std::size_t i = c * kSlabRows + k;
        Row r{Value(w.plates[w.plate_of[i]]), Value(w.colors[w.color_of[i]]),
              Value(w.speed_of[i])};
        r.emplace_back(5.0 * static_cast<double>(c));
        r.emplace_back("cam");
        out.append(std::move(r));
      }
    }
  });
  Measured col_assemble = measure([&] {
    Table out(full);
    Schema slab_schema = plane_schema();
    for (std::size_t c = 0; c < kChunks; ++c) {
      ColumnSlab slab(slab_schema);
      slab.reserve(kSlabRows);
      for (std::size_t k = 0; k < kSlabRows; ++k) {
        const std::size_t i = c * kSlabRows + k;
        slab.append_string(0, w.plates[w.plate_of[i]]);
        slab.append_string(1, w.colors[w.color_of[i]]);
        slab.append_number(2, w.speed_of[i]);
        slab.finish_row();
      }
      out.append_slab(slab,
                      {Value(5.0 * static_cast<double>(c)), Value("cam")});
    }
  });
  std::printf("assemble    row: %10.0f rows/s  (%llu allocs)\n",
              kRows / row_assemble.secs,
              static_cast<unsigned long long>(row_assemble.allocs));
  std::printf("assemble columnar: %9.0f rows/s  (%llu allocs)  %.2fx\n",
              kRows / col_assemble.secs,
              static_cast<unsigned long long>(col_assemble.allocs),
              row_assemble.secs / col_assemble.secs);

  // ---- gates ----------------------------------------------------------
  int failures = 0;
  if (col_num_rps < 2.0 * row_num_rps) {
    std::printf("FAIL: columnar numeric append %.2fx row-era (< 2x gate)\n",
                col_num_rps / row_num_rps);
    ++failures;
  }
  if (col_scan_rps < 2.0 * row_scan_rps) {
    std::printf("FAIL: columnar scan %.2fx row-era (< 2x gate)\n",
                col_scan_rps / row_scan_rps);
    ++failures;
  }
  if (col_num_append.allocs * 2 > row_num_append.allocs) {
    std::printf(
        "FAIL: columnar numeric append allocs %llu > half of row-era %llu\n",
        static_cast<unsigned long long>(col_num_append.allocs),
        static_cast<unsigned long long>(row_num_append.allocs));
    ++failures;
  }
  if (col_append_rps < row_append_rps) {
    std::printf("FAIL: columnar string append regressed (%.2fx row-era)\n",
                col_append_rps / row_append_rps);
    ++failures;
  }
  if (col_assemble.secs > row_assemble.secs) {
    std::printf("FAIL: columnar assemble regressed (%.2fx row-era)\n",
                row_assemble.secs / col_assemble.secs);
    ++failures;
  }
  if (failures == 0) std::printf("all table-plane gates passed\n");
  return failures == 0 ? 0 : 1;
}
