// Fig. 8 (Appendix C): graceful degradation of privacy past the (rho, K)
// bound. For four adversarial false-positive tolerances alpha, plot the
// maximum probability of detecting an event as a function of how far its
// persistence exceeds the protected bound (actual/expected rho, i.e. the
// effective-epsilon multiplier at base eps = 1).
#include "bench_util.hpp"
#include "privacy/degradation.hpp"

using namespace privid;

int main() {
  bench::print_header(
      "Fig. 8 - max detection probability vs actual/expected persistence");
  const double alphas[] = {0.001, 0.01, 0.1, 0.2};
  std::printf("%-8s", "ratio");
  for (double a : alphas) std::printf("  alpha=%-6.3g", a);
  std::printf("\n");
  bench::print_rule();
  for (double ratio = 0.0; ratio <= 12.0; ratio += 0.5) {
    // Effective epsilon grows linearly with the excess (base eps = 1).
    double eff = effective_epsilon_for_k(1.0, 1.0, ratio);
    std::printf("%-8.1f", ratio);
    for (double a : alphas) {
      std::printf("  %-12.4f", max_detection_probability(eff, a));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 8): all curves start near alpha\n"
      "(random guessing) at ratio 0, rise smoothly, and saturate at 1.0\n"
      "around ratio 8-12 for small alpha, earlier for larger alpha.\n");
  return 0;
}
