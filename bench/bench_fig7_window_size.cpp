// Fig. 7: as the query window grows (2 h -> 12 h), the noise needed to
// hide one individual stays constant in absolute terms, so the *relative*
// error of the aggregate shrinks. The paper plots "noise added (#objects)"
// vs window size for Q1-Q3; with a fixed chunk size and per-release
// epsilon, absolute noise is flat while the count grows with the window —
// we report both, plus noise relative to the true count, which is the
// utility story.
#include "bench_util.hpp"
#include "privacy/laplace.hpp"
#include "sensitivity/constraints.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

struct QueryCfg {
  const char* name;
  double rho;            // masked policy rho (Fig. 4 values)
  std::size_t max_rows;  // per 30 s chunk
  double rate_scale;
};

}  // namespace

int main() {
  bench::print_header("Fig. 7 - noise vs query window size (Q1-Q3)");
  const QueryCfg cfgs[] = {{"Q1 campus", 17.0, 6, 0.6},
                           {"Q2 highway", 33.0, 15, 0.25},
                           {"Q3 urban", 20.0, 12, 0.25}};
  const Seconds chunk = 30.0;

  std::printf("%-12s %8s %16s %18s %16s\n", "query", "window", "true count",
              "noise (objects)", "noise/count");
  bench::print_rule();
  for (const auto& cfg : cfgs) {
    sim::Scenario scenario =
        std::string(cfg.name).find("campus") != std::string::npos
            ? sim::make_campus(301, 12.0, cfg.rate_scale)
        : std::string(cfg.name).find("highway") != std::string::npos
            ? sim::make_highway(302, 12.0, cfg.rate_scale)
            : sim::make_urban(303, 12.0, cfg.rate_scale);
    sim::EntityClass cls = std::string(cfg.name).find("highway") !=
                                   std::string::npos
                               ? sim::EntityClass::kCar
                               : sim::EntityClass::kPerson;
    for (double hours = 2; hours <= 12; hours += 2) {
      TimeInterval window{6 * 3600.0, 6 * 3600.0 + hours * 3600.0};
      double truth = static_cast<double>(
          scenario.scene.true_entries(cls, window));
      sensitivity::TableInfo info;
      info.chunk_seconds = chunk;
      info.max_rows = cfg.max_rows;
      info.policy = {cfg.rho, 2};
      double delta = sensitivity::base_delta(info);
      // Expected |noise| of Laplace(delta/eps) at eps = 1.
      double noise = LaplaceMechanism::noise_scale(delta, 1.0);
      std::printf("%-12s %6.0fhr %16.0f %18.1f %15.3f\n", cfg.name, hours,
                  truth, noise, truth > 0 ? noise / truth : 0.0);
    }
    bench::print_rule();
  }
  std::printf(
      "Expected shape (paper Fig. 7): for a fixed per-release epsilon the\n"
      "absolute noise is independent of the window, so relative error\n"
      "(noise/count) falls roughly linearly as the window grows 2->12 h.\n");
  return 0;
}
