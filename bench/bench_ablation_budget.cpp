// Ablation: privacy-budget lifecycle (§6.4).
//
// Repeats the same hourly query against one camera until Privid denies it,
// for several per-frame allocations ε_C and per-query requests ε_Q, and
// shows the ρ-margin rule: adjacent windows collide through the margin,
// ρ-disjoint windows draw from independent budgets.
#include "analyst/executables.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

engine::Privid fresh_system(double budget, std::uint64_t seed = 901) {
  auto scenario = sim::make_campus(seed, 4.0, 0.3);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));
  engine::Privid sys(seed);
  engine::CameraRegistration reg;
  reg.meta = scene->meta();
  reg.content.scene = scene;
  reg.content.seed = seed;
  reg.policy = {60.0, 2};
  reg.epsilon_budget = budget;
  sys.register_camera(std::move(reg));
  cv::DetectorConfig det;
  det.base_detect_prob = 0.8;
  sys.register_executable(
      "counter", analyst::make_entering_counter(
                     det, cv::TrackerConfig::sort(20, 2, 0.1),
                     sim::EntityClass::kPerson));
  return sys;
}

std::string hourly_query(double begin_h, double end_h, double eps) {
  return "SPLIT campus BEGIN " + std::to_string(begin_h * 3600) + " END " +
         std::to_string(end_h * 3600) +
         " BY TIME 30 STRIDE 0 INTO c;"
         "PROCESS c USING counter TIMEOUT 1 PRODUCING 3 ROWS "
         "WITH SCHEMA (entered:NUMBER=0) INTO t;"
         "SELECT COUNT(*) FROM t CONSUMING " +
         std::to_string(eps) + ";";
}

}  // namespace

int main() {
  bench::print_header("Ablation - budget lifecycle (Alg. 1)");

  std::printf("Queries accepted on the same window before denial:\n");
  std::printf("  %-8s %-8s %10s\n", "eps_C", "eps_Q", "accepted");
  for (double budget : {1.0, 4.0, 10.0}) {
    for (double eps_q : {0.25, 1.0}) {
      engine::Privid sys = fresh_system(budget);
      int accepted = 0;
      while (accepted < 1000) {
        try {
          sys.execute(hourly_query(7, 8, eps_q), bench::run_options());
          ++accepted;
        } catch (const BudgetError&) {
          break;
        }
      }
      std::printf("  %-8.2f %-8.2f %10d\n", budget, eps_q, accepted);
    }
  }

  std::printf("\nThe rho-margin rule (eps_C = 1, eps_Q = 1, rho = 60 s):\n");
  {
    engine::Privid sys = fresh_system(1.0);
    sys.execute(hourly_query(7, 8, 1.0), bench::run_options());
    std::printf("  query over [7h, 8h):            accepted\n");
    try {
      sys.execute(hourly_query(8, 9, 1.0), bench::run_options());
      std::printf("  adjacent [8h, 9h):              ACCEPTED (unexpected)\n");
    } catch (const BudgetError&) {
      std::printf("  adjacent [8h, 9h):              denied (margin collides)\n");
    }
    try {
      sys.execute(hourly_query(8.05, 9, 1.0), bench::run_options());
      std::printf("  rho-disjoint [8h03m, 9h):       accepted (independent "
                  "budget)\n");
    } catch (const BudgetError&) {
      std::printf("  rho-disjoint [8h03m, 9h):       denied (unexpected)\n");
    }
  }
  std::printf(
      "\nExpected shape: accepted = floor(eps_C / eps_Q) on a fixed window;\n"
      "adjacent windows couple through the rho margin while windows more\n"
      "than rho apart consume independent per-frame budgets.\n");
  return 0;
}
