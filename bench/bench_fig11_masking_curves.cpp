// Fig. 11 (Appendix F.1): cumulative effect of masking boxes in the
// Algorithm 2 order — for each video, the % of max persistence remaining
// and the % of unique identities retained as a function of the % of grid
// boxes masked (log-scale x-axis in the paper; we sample the same decades).
#include "bench_util.hpp"
#include "maskopt/greedy.hpp"
#include "maskopt/heatmap.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

void curve(const char* name, const sim::Scene& scene, TimeInterval window) {
  constexpr int kCols = 32, kRows = 18;
  constexpr double kTotal = kCols * kRows;
  auto hm = maskopt::build_heatmap(scene, window, kCols, kRows, 1.0);
  auto ordering = maskopt::greedy_mask_ordering(hm, 0);
  double p0 = ordering.steps.front().max_persistence;
  if (p0 <= 0) return;

  std::printf("%-14s", name);
  // Sample the curve at the paper's log-spaced fractions of boxes masked.
  const double fractions[] = {0.0001, 0.001, 0.005, 0.01, 0.02,
                              0.05,   0.1,   0.2,   0.5,  1.0};
  for (double f : fractions) {
    auto idx = static_cast<std::size_t>(f * kTotal);
    idx = std::min(idx, ordering.steps.size() - 1);
    std::printf(" %5.2f/%-4.2f", ordering.steps[idx].max_persistence / p0,
                ordering.steps[idx].identities_retained);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 11 - cumulative masking curves "
      "(cells: persistence-remaining / identities-retained)");
  std::printf("%-14s", "% masked:");
  for (const char* f : {"0.01%", "0.1%", "0.5%", "1%", "2%", "5%", "10%",
                        "20%", "50%", "100%"}) {
    std::printf(" %10s", f);
  }
  std::printf("\n");
  bench::print_rule();

  TimeInterval window{6 * 3600.0, 6 * 3600.0 + 2 * 3600.0};
  {
    auto s = sim::make_campus(1101, 2.0, 0.5);
    curve("privid-campus", s.scene, window);
  }
  {
    auto s = sim::make_highway(1102, 2.0, 0.2);
    curve("privid-highway", s.scene, window);
  }
  {
    auto s = sim::make_urban(1103, 2.0, 0.2);
    curve("privid-urban", s.scene, window);
  }
  std::uint64_t seed = 1110;
  for (const auto& name : sim::extended_scene_names()) {
    auto s = sim::make_extended(name, seed++, 2.0, 0.4);
    curve(name.c_str(), s.scene, window);
  }
  std::printf(
      "\nExpected shape (paper Fig. 11): persistence collapses within the\n"
      "first few percent of boxes masked while identity retention stays\n"
      "near 1.0 until far larger masked fractions.\n");
  return 0;
}
