// Standing-query chunk-cache bench: a year of daily standing periods, cold
// then warm.
//
// A camera records for a year; a standing COUNT query releases one value
// per day (365 periods x 24 hourly chunks = 8760 PROCESS invocations).
// The cold pass runs the full year from scratch. The warm pass replays the
// same year through a second StandingQuery on the same system — the
// re-deployment / second-analyst scenario — and, with the chunk cache on,
// serves every chunk from memory.
//
// PRIVID_CACHE selects the mode (bench_all runs this bench at "off" and
// "shared" and records both, so bench_compare.py gates regressions in the
// hit path like any other bench). With the cache on, the warm pass must be
// at least 5x faster than cold and its raw aggregates must match the cold
// pass exactly — either failure exits non-zero and fails bench_all.
//
// Shared mode adds a restart-warm leg: the first system's cache is flushed
// to a disk tier, the system is destroyed, and a brand-new system pointed
// at the same directory replays the year. Before the disk tier existed a
// restart re-paid the full ~130x cold cost; now the replay must land
// within 2x of the in-memory warm pass (gated in-binary) and its raw
// aggregates must match the cold run exactly.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "engine/privid.hpp"
#include "engine/standing.hpp"

using namespace privid;

namespace {

constexpr double kDay = 86400.0;
constexpr int kDays = 365;

// A year-long scene with ~2 crossings per day. Low fps keeps frame indices
// and the temporal bucket index reasonable at year scale.
std::shared_ptr<sim::Scene> year_scene() {
  VideoMeta m;
  m.camera_id = "longcam";
  m.fps = 1;
  m.width = 1280;
  m.height = 720;
  m.extent = {0, kDays * kDay};
  auto s = std::make_shared<sim::Scene>(m);
  const int entities = 2 * kDays;
  for (int i = 0; i < entities; ++i) {
    sim::Entity e;
    e.id = i + 1;
    e.cls = sim::EntityClass::kPerson;
    e.appearance_feature.assign(8, 0.1);
    double t0 = 40.0 + (kDays * kDay / entities) * i;
    e.appearances.push_back(sim::Trajectory::linear(
        t0, t0 + 120, Box{0, 300, 60, 120}, Box{1200, 300, 60, 120}));
    s->add_entity(e);
  }
  return s;
}

// Samples a detection pass every 30 s of its chunk (120 per hourly chunk)
// and reports the total — enough per-chunk work that the cold pass
// measures real PROCESS cost (~1 M detector passes over the year), cheap
// enough that a year stays a bench and not a soak test.
engine::Executable sampling_counter() {
  return [](const engine::ChunkView& view) {
    engine::ExecOutput out;
    cv::DetectorConfig det;
    det.base_detect_prob = 0.9;
    det.false_positives_per_frame = 0;
    double seen = 0;
    for (Seconds t = view.time().begin; t < view.time().end; t += 30.0) {
      seen += static_cast<double>(view.detect(det, t).size());
    }
    out.rows.push_back({Value(seen)});
    out.simulated_runtime = 0.1;
    return out;
  };
}

double run_year(engine::Privid* sys, const engine::RunOptions& opts,
                double* raw_sum, double* wall_seconds) {
  engine::StandingQuery::Spec spec;
  spec.query_template =
      "SPLIT longcam BEGIN {BEGIN} END {END} BY TIME 3600 STRIDE 0 INTO c;"
      "PROCESS c USING counter TIMEOUT 1 PRODUCING 1 ROWS "
      "WITH SCHEMA (n:NUMBER=0) INTO t;"
      "SELECT SUM(range(n, 0, 500)) FROM t;";
  spec.period = kDay;
  spec.opts = opts;
  spec.opts.reveal_raw = true;
  spec.opts.charge_budget = false;  // owner-side evaluation replay

  engine::StandingQuery standing(sys, spec);
  auto start = std::chrono::steady_clock::now();
  auto releases = standing.advance(kDays * kDay);
  auto end = std::chrono::steady_clock::now();
  *wall_seconds = std::chrono::duration<double>(end - start).count();
  *raw_sum = 0;
  for (const auto& r : releases) *raw_sum += r.raw;
  return static_cast<double>(releases.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Standing-query chunk cache - one year of daily periods, cold vs warm");

  engine::RunOptions opts = bench::run_options();
  engine::CacheMode mode = engine::resolve_cache_mode(opts.cache);
  const char* mode_name = mode == engine::CacheMode::kShared    ? "shared"
                          : mode == engine::CacheMode::kPerQuery ? "per-query"
                                                                 : "off";

  auto scene = year_scene();
  auto make_sys = [&] {
    engine::Privid sys(123);
    engine::CameraRegistration reg;
    reg.meta = scene->meta();
    reg.content.scene = scene;
    reg.content.seed = 31;
    reg.policy = {60.0, 2};
    reg.epsilon_budget = 1000.0;
    sys.register_camera(std::move(reg));
    sys.register_executable("counter", sampling_counter());
    return sys;
  };

  // The restart leg's cache directory (shared mode only): the first
  // system's cold pass populates it via flush_disk, the revived system
  // replays from it.
  const auto cache_dir =
      std::filesystem::current_path() / "bench_standing_cache.dir";
  std::filesystem::remove_all(cache_dir);
  auto disk_config = [&] {
    engine::DiskTierConfig config;
    config.dir = cache_dir.string();
    // The restarted system preloads at attach — replaying the year is
    // then memory-speed lookups, not one file open per chunk. The preload
    // cost is paid once at construction and reported below.
    config.preload = true;
    return config;
  };

  engine::Privid sys = make_sys();
  if (mode == engine::CacheMode::kShared) {
    sys.chunk_cache().attach_disk_tier(disk_config());
  }

  double cold_raw = 0, warm_raw = 0, cold_s = 0, warm_s = 0;
  double cold_periods = run_year(&sys, opts, &cold_raw, &cold_s);
  bench::print_obs_summary("cold");
  double warm_periods = run_year(&sys, opts, &warm_raw, &warm_s);
  bench::print_obs_summary("warm");

  engine::CacheStats stats = sys.cache_stats();
  std::printf("cache mode:       %s (threads=%zu)\n", mode_name,
              opts.num_threads);
  std::printf("periods:          cold %.0f, warm %.0f (24 chunks each)\n",
              cold_periods, warm_periods);
  std::printf("raw sum:          cold %.0f, warm %.0f\n", cold_raw, warm_raw);
  std::printf("wall:             cold %.3f s, warm %.3f s  (speedup %.1fx)\n",
              cold_s, warm_s, cold_s / (warm_s > 0 ? warm_s : 1e-9));
  std::printf("cache:            %llu hits, %llu misses, %llu evictions, "
              "%zu entries, %.1f MiB\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              stats.entries, static_cast<double>(stats.bytes) / (1 << 20));

  // The warm replay must be exact — cached rows are the same rows.
  if (warm_raw != cold_raw || warm_periods != cold_periods) {
    std::printf("FAIL: warm replay diverged from cold run\n");
    return 1;
  }
  // Acceptance gate: with the shared cache, replaying history must be at
  // least 5x cheaper than computing it.
  if (mode == engine::CacheMode::kShared && warm_s * 5.0 > cold_s) {
    std::printf("FAIL: warm replay not >= 5x faster than cold "
                "(cold %.3f s, warm %.3f s)\n",
                cold_s, warm_s);
    return 1;
  }

  if (mode == engine::CacheMode::kShared) {
    // Restart-warm leg: persist the year to the disk tier, drop the whole
    // system, and replay through a fresh one on the same directory.
    auto flush_start = std::chrono::steady_clock::now();
    sys.chunk_cache().flush_disk();
    double flush_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - flush_start)
                         .count();
    stats = sys.cache_stats();
    std::printf("disk flush:       %.3f s, %zu slab files, %.1f MiB\n",
                flush_s, stats.disk_entries,
                static_cast<double>(stats.disk_bytes) / (1 << 20));
    sys = make_sys();  // the old system (and its memory tier) is gone
    auto attach_start = std::chrono::steady_clock::now();
    sys.chunk_cache().attach_disk_tier(disk_config());
    double attach_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - attach_start)
                          .count();
    std::printf("attach+preload:   %.3f s, %zu entries warmed\n", attach_s,
                sys.cache_stats().entries);

    double restart_raw = 0, restart_s = 0;
    double restart_periods = run_year(&sys, opts, &restart_raw, &restart_s);
    stats = sys.cache_stats();
    std::printf("restart-warm:     %.3f s (vs warm %.3f s, cold %.3f s), "
                "%llu disk hits, %llu corrupt drops\n",
                restart_s, warm_s, cold_s,
                static_cast<unsigned long long>(stats.disk_hits),
                static_cast<unsigned long long>(stats.corrupt_drops));
    bench::print_obs_summary("restart-warm");
    std::filesystem::remove_all(cache_dir);

    if (restart_raw != cold_raw || restart_periods != cold_periods) {
      std::printf("FAIL: restart-warm replay diverged from cold run\n");
      return 1;
    }
    // Acceptance gate: a restarted process pointed at the same cache
    // directory must not re-pay PROCESS history — within 2x of the
    // in-memory warm pass.
    if (restart_s > 2.0 * warm_s) {
      std::printf("FAIL: restart-warm not within 2x of warm "
                  "(warm %.3f s, restart %.3f s)\n",
                  warm_s, restart_s);
      return 1;
    }
  }
  return 0;
}
