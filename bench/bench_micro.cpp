// Micro-benchmarks (google-benchmark): the hot paths of the Privid
// pipeline — Laplace sampling, budget ledger operations, sensitivity
// computation, relational operators, detector + tracker steps, chunking.
#include <benchmark/benchmark.h>

#include "common/interval_map.hpp"
#include "common/rng.hpp"
#include "cv/detector.hpp"
#include "cv/tracker.hpp"
#include "privacy/budget.hpp"
#include "privacy/laplace.hpp"
#include "query/parser.hpp"
#include "sensitivity/rules.hpp"
#include "sim/scenarios.hpp"
#include "table/aggregate.hpp"
#include "table/column.hpp"
#include "table/ops.hpp"
#include "video/chunker.hpp"

using namespace privid;

static void BM_LaplaceSample(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LaplaceMechanism::release(100.0, 10.0, 1.0, rng));
  }
}
BENCHMARK(BM_LaplaceSample);

static void BM_BudgetCharge(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BudgetLedger ledger(1e9);
    state.ResumeTiming();
    for (int i = 0; i < 100; ++i) {
      ledger.charge({i * 1000, i * 1000 + 500}, 50, 1.0);
    }
  }
}
BENCHMARK(BM_BudgetCharge);

static void BM_IntervalMapAdd(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    IntervalMap m;
    for (int i = 0; i < 1000; ++i) {
      std::int64_t a = rng.uniform_int(0, 1000000);
      m.add(a, a + rng.uniform_int(1, 10000), 0.5);
    }
    benchmark::DoNotOptimize(m.breakpoint_count());
  }
}
BENCHMARK(BM_IntervalMapAdd);

static void BM_SensitivityComputation(benchmark::State& state) {
  auto q = query::parse_query(
      "SPLIT cam BEGIN 0 END 500 BY TIME 5 STRIDE 0 INTO c;"
      "PROCESS c USING e TIMEOUT 1 PRODUCING 10 ROWS "
      "WITH SCHEMA (plate:STRING, speed:NUMBER) INTO t;"
      "SELECT AVG(range(speed, 0, 60)) FROM t;");
  sensitivity::SensitivityEngine eng([](const std::string&) {
    sensitivity::TableInfo i;
    i.chunk_seconds = 5;
    i.max_rows = 10;
    i.num_chunks = 100;
    i.policy = {30, 2};
    return i;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eng.release_sensitivity(q.selects[0].core.projections[0],
                                q.selects[0].core));
  }
}
BENCHMARK(BM_SensitivityComputation);

static void BM_QueryParse(benchmark::State& state) {
  const std::string text =
      "SPLIT camA BEGIN 0 END 2678400 BY TIME 5 STRIDE 0 INTO chunksA;"
      "PROCESS chunksA USING model TIMEOUT 1 PRODUCING 10 ROWS "
      "WITH SCHEMA (plate:STRING=\"\", color:STRING=\"\", speed:NUMBER=0) "
      "INTO tableA;"
      "SELECT AVG(range(speed, 30, 60)) FROM tableA;"
      "SELECT color, COUNT(plate) FROM (SELECT plate, color FROM tableA) "
      "GROUP BY color WITH KEYS [\"RED\", \"WHITE\", \"SILVER\"];";
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::parse_query(text));
  }
}
BENCHMARK(BM_QueryParse);

static void BM_MakeChunks(benchmark::State& state) {
  VideoMeta m;
  m.fps = 30;
  m.extent = {0, 12 * 3600.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_chunks(m, {0, 12 * 3600.0}, {5, 0}));
  }
}
BENCHMARK(BM_MakeChunks);

static void BM_GroupByKeys(benchmark::State& state) {
  Schema s({{"color", DType::kString, Value(std::string())},
            {"v", DType::kNumber, Value(0.0)}});
  Table t(s);
  Rng rng(3);
  const char* colors[] = {"RED", "WHITE", "SILVER", "BLACK"};
  for (int i = 0; i < 10000; ++i) {
    t.append({Value(colors[rng.uniform_int(0, 3)]), Value(rng.uniform())});
  }
  std::vector<std::vector<Value>> keys{
      {Value("RED"), Value("WHITE"), Value("SILVER"), Value("BLACK")}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(group_by_keys(t, {"color"}, keys));
  }
}
BENCHMARK(BM_GroupByKeys);

// ---- columnar table data plane (see also bench_table_plane.cpp, which
// ---- gates these paths against a row-era baseline in the trend job)

static void BM_TableAppendNumericSlab(benchmark::State& state) {
  // The PROCESS ingest path: typed appends into a pre-sized slab, spliced
  // into the table.
  Schema s({{"seen", DType::kNumber, Value(0.0)},
            {"speed", DType::kNumber, Value(0.0)}});
  Rng rng(5);
  std::vector<double> speeds(4096);
  for (auto& x : speeds) x = rng.uniform(0, 120);
  for (auto _ : state) {
    Table t(s);
    t.reserve_rows(speeds.size());
    ColumnSlab slab(s);
    slab.reserve(speeds.size());
    for (double x : speeds) {
      slab.append_number(0, 1.0);
      slab.append_number(1, x);
      slab.finish_row();
    }
    t.append_slab(slab, {});
    benchmark::DoNotOptimize(t.row_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(speeds.size()));
}
BENCHMARK(BM_TableAppendNumericSlab);

static void BM_TableFilterGroupScan(benchmark::State& state) {
  Schema s({{"color", DType::kString, Value(std::string())},
            {"v", DType::kNumber, Value(0.0)}});
  Table t(s);
  Rng rng(3);
  const char* colors[] = {"RED", "WHITE", "SILVER", "BLACK"};
  for (int i = 0; i < 100000; ++i) {
    t.append({Value(colors[rng.uniform_int(0, 3)]), Value(rng.uniform())});
  }
  std::vector<std::vector<Value>> keys{
      {Value("RED"), Value("WHITE"), Value("SILVER"), Value("BLACK")}};
  const std::vector<double>& v = t.numbers(1);
  for (auto _ : state) {
    Table kept = select_rows(
        t, [&](const RowView& r) { return v[r.index()] < 0.5; });
    auto groups = group_by_keys(kept, {"color"}, keys);
    double total = 0;
    for (const auto& g : groups) {
      total += aggregate_rows(AggFunc::kSum, kept, "v", g.rows);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TableFilterGroupScan);

static void BM_StringDictIntern(benchmark::State& state) {
  std::vector<std::string> pool;
  for (int i = 0; i < 1000; ++i) pool.push_back("P-" + std::to_string(i));
  for (auto _ : state) {
    StringDict d;
    for (int rep = 0; rep < 4; ++rep) {
      for (const auto& s : pool) benchmark::DoNotOptimize(d.intern(s));
    }
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_StringDictIntern);

static void BM_DetectorFrame(benchmark::State& state) {
  auto scenario = sim::make_campus(9, 1.0, 1.0);
  cv::Detector det(cv::DetectorConfig{}, 4);
  double t = 6 * 3600.0 + 1800;
  FrameIndex f = scenario.scene.meta().frame_at(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.detect(scenario.scene, t, f));
  }
}
BENCHMARK(BM_DetectorFrame);

static void BM_TrackerStep(benchmark::State& state) {
  auto scenario = sim::make_campus(9, 1.0, 1.0);
  cv::Detector det(cv::DetectorConfig{}, 4);
  double t0 = 6 * 3600.0 + 1800;
  // Pre-compute 100 frames of detections.
  std::vector<std::vector<cv::Detection>> frames;
  for (int i = 0; i < 100; ++i) {
    double t = t0 + i * 0.1;
    frames.push_back(
        det.detect(scenario.scene, t, scenario.scene.meta().frame_at(t)));
  }
  for (auto _ : state) {
    cv::Tracker tracker(cv::TrackerConfig::sort(20, 2, 0.1));
    for (int i = 0; i < 100; ++i) {
      tracker.step(t0 + i * 0.1, frames[static_cast<std::size_t>(i)]);
    }
    benchmark::DoNotOptimize(tracker.take_tracks());
  }
}
BENCHMARK(BM_TrackerStep);

BENCHMARK_MAIN();
