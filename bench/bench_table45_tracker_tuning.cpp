// Tables 4-5 (Appendix A): tracker hyper-parameter tuning. The owner
// sweeps a grid per camera and keeps the configuration whose duration
// distribution best matches annotated ground truth.
//
// Paper grids: DeepSORT {cos, iou, age, n_init} for campus/urban, SORT
// {max_age, min_hits, iou_dist} for highway (cars) — in TrackerConfig
// vocabulary: {max_age, n_init, iou_gate}. We run reduced grids (same
// axes) and print the ranking; the chosen config per video is the top row.
#include "bench_util.hpp"
#include "cv/tuning.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

int main() {
  bench::print_header("Tables 4-5 - tracker hyper-parameter tuning");
  TimeInterval window{6 * 3600.0, 6 * 3600.0 + 600};

  // Table 4: DeepSORT-style grids on the pedestrian videos.
  for (const char* name : {"campus", "urban"}) {
    auto scenario = std::string(name) == "campus"
                        ? sim::make_campus(451, 1.0, 0.5)
                        : sim::make_urban(452, 1.0, 0.25);
    cv::DetectorConfig det;
    det.base_detect_prob = std::string(name) == "campus" ? 0.74 : 0.45;

    cv::DeepSortGrid grid;
    grid.cos = {0.3, 0.5, 0.7};
    grid.iou = {0.1, 0.3};
    grid.age = {16, 64};
    grid.n_init = {2, 5};
    auto results = cv::tune_deepsort(scenario.scene, window, det, grid, 7,
                                     /*fps=*/4.0);
    std::printf("\nTable 4 (%s), top 5 of %zu configs by distribution "
                "distance:\n", name, results.size());
    std::printf("  %-36s %10s %12s\n", "config", "distance", "max dur (s)");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, results.size());
         ++i) {
      std::printf("  %-36s %10.3f %12.1f\n", results[i].label.c_str(),
                  results[i].distance, results[i].max_duration);
    }
  }

  // Table 5: SORT grid on highway (cars; appearance features less useful).
  {
    auto scenario = sim::make_highway(453, 1.0, 0.2);
    cv::DetectorConfig det;
    det.base_detect_prob = 0.95;
    det.size_exponent = 0.2;
    cv::SortGrid grid;
    grid.max_age = {60, 240, 480};
    grid.n_init = {3, 5, 9};
    grid.iou_gate = {0.1, 0.3, 0.7};
    auto results =
        cv::tune_sort(scenario.scene, window, det, grid, 7, /*fps=*/4.0);
    std::printf("\nTable 5 (highway), top 5 of %zu configs:\n",
                results.size());
    std::printf("  %-36s %10s %12s\n", "config", "distance", "max dur (s)");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, results.size());
         ++i) {
      std::printf("  %-36s %10.3f %12.1f\n", results[i].label.c_str(),
                  results[i].distance, results[i].max_duration);
    }
  }
  std::printf(
      "\nExpected shape: mid-range gates with moderate max_age win; tiny\n"
      "max_age fragments tracks (distribution skews short), huge gates\n"
      "merge identities (skews long).\n");
  return 0;
}
