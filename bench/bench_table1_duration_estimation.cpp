// Table 1: despite imperfect per-frame detection, detector + tracker
// produce a conservative estimate of the maximum duration any individual
// is visible.
//
// Paper row format:
//   Video | Max Duration (Ground Truth) | Max Duration (CV Estimate) |
//   % Objects CV Missed
// Paper values: campus 81s/83s/29%, highway 316s/439s/5%, urban
// 270s/354s/76%.
#include "bench_util.hpp"
#include "cv/persistence.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

struct VideoCase {
  const char* name;
  sim::Scenario scenario;
  cv::DetectorConfig detector;   // per-video detector quality (Appendix A)
  cv::TrackerConfig tracker;
};

VideoCase make_case(const char* name) {
  // Detector quality mirrors the paper's per-video miss rates: urban is a
  // dense far-field scene (76% missed), highway has large easy objects
  // (5% missed), campus sits between (29%).
  if (std::string(name) == "campus") {
    auto s = sim::make_campus(101, 1.0, 0.6);
    cv::DetectorConfig d;
    d.base_detect_prob = 0.74;
    return {name, std::move(s), d, cv::TrackerConfig::sort(60, 2, 0.1)};
  }
  if (std::string(name) == "highway") {
    auto s = sim::make_highway(102, 1.0, 0.25);
    cv::DetectorConfig d;
    d.base_detect_prob = 0.95;
    d.size_exponent = 0.2;
    return {name, std::move(s), d, cv::TrackerConfig::sort(120, 3, 0.1)};
  }
  auto s = sim::make_urban(103, 1.0, 0.25);
  cv::DetectorConfig d;
  d.base_detect_prob = 0.30;  // dense small objects: most missed per frame
  d.size_exponent = 0.4;
  return {name, std::move(s), d, cv::TrackerConfig::sort(120, 2, 0.05)};
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 - CV duration estimation vs ground truth (10-min segments)");
  std::printf("%-10s %18s %18s %14s %12s\n", "Video", "GT max dur (s)",
              "CV estimate (s)", "% obj missed", "conservative");
  bench::print_rule();

  for (const char* name : {"campus", "highway", "urban"}) {
    VideoCase vc = make_case(name);
    TimeInterval window{6 * 3600.0, 6 * 3600.0 + 600};
    // For highway the paper excludes cars parked for the entire segment;
    // our masked GT excludes the parking strip the same way.
    const Mask* gt_mask =
        std::string(name) == "highway" ? &vc.scenario.recommended_mask
                                       : nullptr;
    auto gt = cv::ground_truth_durations(vc.scenario.scene, window, gt_mask);
    auto est =
        cv::estimate_persistence(vc.scenario.scene, window, vc.detector,
                                 vc.tracker, 7, gt_mask, /*fps=*/5.0);
    bool conservative = est.max_duration >= gt.max_duration * 0.95;
    std::printf("%-10s %18.0f %18.0f %13.0f%% %12s\n", name, gt.max_duration,
                est.max_duration, est.frame_miss_rate * 100,
                conservative ? "yes" : "NO");
  }
  std::printf(
      "\nPaper: campus 81/83/29%%, highway 316/439/5%%, urban 270/354/76%%.\n"
      "Expected shape: CV estimate >= ground truth despite per-frame "
      "misses\n(tracker stitches across gaps and max_age pads track ends).\n");
  return 0;
}
