// Ablation: what does each utility optimization buy on the same query?
//
// Runs the Q1-style hourly people count on campus under four
// configurations and reports the resulting sensitivity, 99% noise band and
// mean accuracy:
//   A. no mask, policy rho = unmasked max persistence
//   B. owner mask, rho = masked max persistence        (§7.1)
//   C. owner mask + hard-boundary spatial split (§7.2): the owner asserts
//      the two halves of the quad are never crossed by one person, so any
//      chunk size is allowed and the analyst declares the smaller
//      per-region output cap (the Table 2 effect)
//   D. mask with rho inflated 2x (sensitivity of accuracy to a
//      conservative policy estimate)
//
// This regenerates no single paper figure; it isolates the design choices
// DESIGN.md calls out (masking vs splitting vs policy slack).
#include "analyst/executables.hpp"
#include "bench_util.hpp"
#include "engine/privid.hpp"
#include "privacy/laplace.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

struct Config {
  const char* label;
  bool use_mask;
  bool use_regions;
  double rho;
  std::size_t max_rows;
};

}  // namespace

int main() {
  bench::print_header("Ablation - masking / splitting / policy slack (Q1)");

  auto scenario = sim::make_campus(801, 4.0, 1.0);
  auto scene = std::make_shared<sim::Scene>(std::move(scenario.scene));
  // Owner-side estimates.
  auto unmasked = scene->masked_persistence(nullptr, 1.0);
  auto masked = scene->masked_persistence(&scenario.recommended_mask, 1.0);
  double rho_unmasked = unmasked.max_duration * 1.1;
  double rho_masked = masked.max_duration * 1.1;
  std::printf("owner estimates: unmasked max %.0f s, masked max %.0f s\n\n",
              unmasked.max_duration, masked.max_duration);

  const Config configs[] = {
      {"A no-mask", false, false, rho_unmasked, 3},
      {"B mask", true, false, rho_masked, 3},
      {"C mask+split", true, true, rho_masked, 2},
      {"D mask, 2x rho slack", true, false, rho_masked * 2, 3},
  };

  cv::DetectorConfig det;
  det.base_detect_prob = 0.8;
  auto trk = cv::TrackerConfig::sort(20, 2, 0.1);

  std::printf("%-22s %8s %12s %12s %10s\n", "config", "rho(s)", "sensitivity",
              "ribbon99", "accuracy");
  bench::print_rule();
  for (const auto& cfg : configs) {
    engine::Privid sys(81);
    engine::CameraRegistration reg;
    reg.meta = scene->meta();
    reg.content.scene = scene;
    reg.content.seed = 81;
    reg.policy = {cfg.rho, 2};
    reg.epsilon_budget = 100.0;
    reg.masks.emplace("owner",
                      engine::MaskEntry{scenario.recommended_mask,
                                        {cfg.rho, 2}});
    // Hard-boundary split: each region sees fewer people per chunk, so the
    // analyst declares a smaller max_rows (the Table 2 effect).
    reg.regions.emplace(
        "halves", RegionScheme("halves", BoundaryKind::kHard,
                               {{"west", Box{0, 0, 640, 720}},
                                {"east", Box{640, 0, 640, 720}}}));
    sys.register_camera(std::move(reg));
    sys.register_executable(
        "counter", analyst::make_entering_counter(det, trk,
                                                  sim::EntityClass::kPerson));

    std::string split =
        "SPLIT campus BEGIN 21600 END 36000 BY TIME 30 STRIDE 0";
    if (cfg.use_mask) split += " WITH MASK owner";
    if (cfg.use_regions) split += " BY REGION halves";
    split += " INTO c;";

    engine::RunOptions opts = bench::run_options();
    opts.reveal_raw = true;
    opts.charge_budget = false;
    auto r = sys.execute(
        split +
            "PROCESS c USING counter TIMEOUT 1 PRODUCING " +
            std::to_string(cfg.max_rows) +
            " ROWS WITH SCHEMA (entered:NUMBER=0) INTO t;"
            "SELECT COUNT(*) FROM t;",
        opts);
    const auto& rel = r.releases[0];
    double ribbon =
        LaplaceMechanism::confidence_halfwidth(rel.sensitivity, 1.0, 0.99);
    auto acc = bench::noise_accuracy(rel.raw, rel.sensitivity, 1.0, rel.raw);
    std::printf("%-22s %8.0f %12.1f %12.1f %9.1f%%\n", cfg.label, cfg.rho,
                rel.sensitivity, ribbon, acc.mean_accuracy * 100);
  }
  std::printf(
      "\nExpected shape: masking (B) cuts sensitivity by roughly the Fig. 4\n"
      "persistence reduction vs (A); spatial splitting (C) buys a further\n"
      "~2x (Table 2); doubling rho (D) roughly doubles the noise, showing\n"
      "the cost of a loose policy estimate is graceful, not catastrophic.\n");
  return 0;
}
