// Fig. 5 (Case 1, Q1-Q3): standing queries counting unique objects per
// hour over a 12-hour day, on all three videos.
//
// Series printed per video:
//   Original         — the same analyst pipeline WITHOUT Privid
//                      (no chunking, no noise)
//   Privid (no noise)— Privid's raw output (chunking effects only)
//   ribbon99         — half-width of the 99% Laplace noise band
//
// Expected shape: the Privid series tracks the diurnal curve of the
// Original, and the ribbon is small relative to the hourly counts.
#include <map>

#include "analyst/executables.hpp"
#include "bench_util.hpp"
#include "engine/privid.hpp"
#include "privacy/laplace.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

struct Case {
  const char* name;
  sim::Scenario scenario;
  sim::EntityClass cls;
  Seconds masked_rho;
  std::size_t max_rows;
  cv::DetectorConfig det;
};

// "Original": identical detector+tracker, run continuously (one instance
// over the whole window), counting confirmed tracks per start hour.
std::map<int, double> baseline_hourly(const sim::Scene& scene,
                                      TimeInterval window, const Mask* mask,
                                      const cv::DetectorConfig& det,
                                      const cv::TrackerConfig& trk,
                                      std::uint64_t seed) {
  cv::Detector detector(det, seed);
  cv::Tracker tracker(trk);
  cv::FrameArena arena;
  Seconds dt = 1.0 / scene.meta().fps;
  for (Seconds t = window.begin; t < window.end; t += dt) {
    tracker.step(t, detector.detect_into(scene, t, scene.meta().frame_at(t),
                                         mask, arena));
  }
  std::map<int, double> hourly;
  for (const auto& rec : tracker.take_tracks()) {
    hourly[static_cast<int>(rec.first_seen / 3600.0)] += 1.0;
  }
  return hourly;
}

}  // namespace

int main() {
  bench::print_header("Fig. 5 - Case 1 standing queries (Q1-Q3), hourly");
  const double kHours = 12;

  std::vector<Case> cases;
  {
    cv::DetectorConfig d;
    d.base_detect_prob = 0.8;
    cases.push_back({"Q1 campus", sim::make_campus(501, kHours, 1.0),
                     sim::EntityClass::kPerson, 17.0, 3, d});
  }
  {
    cv::DetectorConfig d;
    d.base_detect_prob = 0.92;
    d.size_exponent = 0.2;
    cases.push_back({"Q2 highway", sim::make_highway(502, kHours, 0.3),
                     sim::EntityClass::kCar, 33.0, 4, d});
  }
  {
    cv::DetectorConfig d;
    d.base_detect_prob = 0.6;
    cases.push_back({"Q3 urban", sim::make_urban(503, kHours, 0.3),
                     sim::EntityClass::kPerson, 20.0, 4, d});
  }

  for (auto& c : cases) {
    auto scene = std::make_shared<sim::Scene>(std::move(c.scenario.scene));
    engine::Privid sys(50);
    engine::CameraRegistration reg;
    reg.meta = scene->meta();
    reg.content.scene = scene;
    reg.content.seed = 77;
    reg.policy = {300.0, 2};
    reg.epsilon_budget = 50.0;
    reg.masks.emplace("owner",
                      engine::MaskEntry{c.scenario.recommended_mask,
                                        {c.masked_rho, 2}});
    const std::string cam = reg.meta.camera_id;
    sys.register_camera(std::move(reg));
    auto trk = cv::TrackerConfig::sort(20, 2, 0.1);
    sys.register_executable(
        "counter", analyst::make_entering_counter(c.det, trk, c.cls));

    engine::RunOptions opts = bench::run_options();
    opts.reveal_raw = true;
    auto result = sys.execute(
        "SPLIT " + cam + " BEGIN 21600 END " +
            std::to_string(21600 + static_cast<long>(kHours * 3600)) +
            " BY TIME 30 STRIDE 0 WITH MASK owner INTO c;"
            "PROCESS c USING counter TIMEOUT 1 PRODUCING " +
            std::to_string(c.max_rows) +
            " ROWS WITH SCHEMA (entered:NUMBER=0) INTO t;"
            "SELECT COUNT(*) FROM t GROUP BY hour(chunk);",
        opts);

    auto baseline = baseline_hourly(*scene, {21600, 21600 + kHours * 3600},
                                    &c.scenario.recommended_mask, c.det, trk,
                                    77);

    std::printf("\n%s  (chunk 30 s, masked rho %.0f s, eps 1/release)\n",
                c.name, c.masked_rho);
    std::printf("  %-6s %10s %14s %10s %10s\n", "hour", "Original",
                "Privid(raw)", "ribbon99", "accuracy");
    double ribbon = 0;
    for (const auto& r : result.releases) {
      int hour = static_cast<int>(r.group_key[0].as_number());
      double orig = baseline.count(hour) ? baseline[hour] : 0.0;
      ribbon = LaplaceMechanism::confidence_halfwidth(r.sensitivity,
                                                      r.epsilon, 0.99);
      auto acc = bench::noise_accuracy(r.raw, r.sensitivity, r.epsilon, orig);
      std::printf("  %02d:00  %10.0f %14.0f %10.1f %9.1f%%\n", hour, orig,
                  r.raw, ribbon, acc.mean_accuracy * 100);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 5): Privid(raw) follows the diurnal\n"
      "curve of Original; the 99%% ribbon stays well below the hourly\n"
      "counts, so the trend survives the noise.\n");
  return 0;
}
