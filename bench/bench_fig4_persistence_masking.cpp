// Fig. 4: the distribution of object persistence is heavy-tailed; the
// owner's mask (Fig. 3 bottom row) removes the tail — cutting the maximum
// duration by a large factor — while retaining most objects.
//
// Paper: campus 4.99x reduction (1.4k -> 1.3k people), highway 9.65x
// (48.7k -> 47.7k cars), urban 1.71x (43.3k -> 40.5k people).
#include "bench_util.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

void histogram_row(const std::vector<double>& durations, const char* label) {
  // log2-second bins, 0..12 (the paper's x-axis).
  constexpr int kBins = 13;
  std::size_t counts[kBins] = {0};
  for (double d : durations) {
    int b = d <= 1 ? 0 : static_cast<int>(std::log2(d));
    b = std::min(b, kBins - 1);
    counts[b]++;
  }
  std::printf("  %-9s", label);
  for (int b = 0; b < kBins; ++b) {
    double f = durations.empty()
                   ? 0
                   : static_cast<double>(counts[b]) / durations.size();
    std::printf(" %5.2f", f);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 4 - persistence distributions, original vs masked "
      "(relative frequency per log2(s) bin)");

  struct Case {
    const char* name;
    sim::Scenario s;
  };
  std::vector<Case> cases;
  cases.push_back({"campus", sim::make_campus(401, 4.0, 0.6)});
  cases.push_back({"highway", sim::make_highway(402, 4.0, 0.25)});
  cases.push_back({"urban", sim::make_urban(403, 4.0, 0.25)});

  std::printf("bin (log2 s):      0     1     2     3     4     5     6"
              "     7     8     9    10    11    12\n");
  for (auto& c : cases) {
    auto orig = c.s.scene.masked_persistence(nullptr, 1.0);
    auto masked = c.s.scene.masked_persistence(&c.s.recommended_mask, 1.0);
    std::printf("\n%s:\n", c.name);
    histogram_row(orig.durations, "original");
    histogram_row(masked.durations, "masked");
    double reduction = masked.max_duration > 0
                           ? orig.max_duration / masked.max_duration
                           : 0.0;
    std::printf("  max persistence: %.0fs -> %.0fs  (%.2fx reduction)\n",
                orig.max_duration, masked.max_duration, reduction);
    std::printf("  objects: %zu -> %zu retained (%.1f%%)\n",
                orig.entities_total, masked.entities_retained,
                100.0 * static_cast<double>(masked.entities_retained) /
                    static_cast<double>(orig.entities_total));
  }
  std::printf(
      "\nPaper: reductions campus 4.99x / highway 9.65x / urban 1.71x with\n"
      ">90%% objects retained. Expected shape: a heavy right tail in the\n"
      "original distribution that the mask removes, with small object "
      "loss.\n");
  return 0;
}
