// Fig. 6: joint impact of chunk size and per-chunk output cap (max_rows,
// i.e. the output range of the hourly COUNT) on end-to-end RMSE, for the
// Case-1 queries.
//
// For each (chunk, max_rows): run the Privid pipeline once (raw per-hour
// counts + sensitivity), then fold in 100 Laplace draws per hour and report
// RMSE against the "Original" (no chunking, no noise) series.
//
// Expected shape: larger chunks lower the raw error (more temporal context
// for the tracker, fewer boundary splits) but raise the noise (an event
// spans a larger fraction of the table); small max_rows truncates real
// rows, large max_rows inflates sensitivity — the sweet spot sits at
// moderate values, and the paper's "X" choice is near it.
#include <map>

#include "analyst/executables.hpp"
#include "bench_util.hpp"
#include "engine/privid.hpp"
#include "sim/scenarios.hpp"

using namespace privid;

namespace {

std::map<int, double> baseline_hourly(const sim::Scene& scene,
                                      TimeInterval window, const Mask* mask,
                                      const cv::DetectorConfig& det,
                                      const cv::TrackerConfig& trk,
                                      std::uint64_t seed) {
  cv::Detector detector(det, seed);
  cv::Tracker tracker(trk);
  cv::FrameArena arena;
  Seconds dt = 1.0 / scene.meta().fps;
  for (Seconds t = window.begin; t < window.end; t += dt) {
    tracker.step(t, detector.detect_into(scene, t, scene.meta().frame_at(t),
                                         mask, arena));
  }
  std::map<int, double> hourly;
  for (const auto& rec : tracker.take_tracks()) {
    hourly[static_cast<int>(rec.first_seen / 3600.0)] += 1.0;
  }
  return hourly;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 6 - RMSE vs chunk size x max per-chunk output (2-hour window)");

  struct Case {
    const char* name;
    sim::Scenario scenario;
    sim::EntityClass cls;
    Seconds rho;
    cv::DetectorConfig det;
  };
  std::vector<Case> cases;
  {
    cv::DetectorConfig d;
    d.base_detect_prob = 0.8;
    cases.push_back({"Q1 campus", sim::make_campus(601, 2.0, 0.5),
                     sim::EntityClass::kPerson, 17.0, d});
  }
  {
    cv::DetectorConfig d;
    d.base_detect_prob = 0.92;
    d.size_exponent = 0.2;
    cases.push_back({"Q2 highway", sim::make_highway(602, 2.0, 0.2),
                     sim::EntityClass::kCar, 33.0, d});
  }
  {
    cv::DetectorConfig d;
    d.base_detect_prob = 0.6;
    cases.push_back({"Q3 urban", sim::make_urban(603, 2.0, 0.2),
                     sim::EntityClass::kPerson, 20.0, d});
  }

  const double chunks[] = {5, 10, 30, 60, 120};
  const std::size_t caps[] = {2, 5, 10, 25};

  for (auto& c : cases) {
    auto scene = std::make_shared<sim::Scene>(std::move(c.scenario.scene));
    auto trk = cv::TrackerConfig::sort(20, 2, 0.1);
    auto baseline = baseline_hourly(*scene, {21600, 21600 + 7200},
                                    &c.scenario.recommended_mask, c.det, trk,
                                    77);
    std::printf("\n%s (rows: chunk s, cols: max per-chunk output -> RMSE)\n",
                c.name);
    std::printf("  %8s", "chunk\\cap");
    for (std::size_t cap : caps) std::printf(" %8zu", cap);
    std::printf("\n");

    for (double chunk : chunks) {
      std::printf("  %8.0f", chunk);
      for (std::size_t cap : caps) {
        engine::Privid sys(60);
        engine::CameraRegistration reg;
        reg.meta = scene->meta();
        reg.content.scene = scene;
        reg.content.seed = 77;
        reg.policy = {c.rho, 2};
        reg.epsilon_budget = 1000.0;
        std::string cam = reg.meta.camera_id;
        sys.register_camera(std::move(reg));
        sys.register_executable(
            "counter", analyst::make_entering_counter(c.det, trk, c.cls));
        engine::RunOptions opts = bench::run_options();
        opts.reveal_raw = true;
        opts.charge_budget = false;  // owner-side what-if sweep
        auto result = sys.execute(
            "SPLIT " + cam +
                " BEGIN 21600 END 28800 BY TIME " + std::to_string(chunk) +
                " STRIDE 0 INTO c;"
                "PROCESS c USING counter TIMEOUT 1 PRODUCING " +
                std::to_string(cap) +
                " ROWS WITH SCHEMA (entered:NUMBER=0) INTO t;"
                "SELECT COUNT(*) FROM t GROUP BY hour(chunk);",
            opts);
        // RMSE over hours and 100 noise draws.
        Rng rng(7);
        double se = 0;
        int n = 0;
        for (int draw = 0; draw < 100; ++draw) {
          for (const auto& r : result.releases) {
            int hour = static_cast<int>(r.group_key[0].as_number());
            double orig = baseline.count(hour) ? baseline[hour] : 0.0;
            double noisy =
                r.raw + rng.laplace(0.0, r.sensitivity / r.epsilon);
            se += (noisy - orig) * (noisy - orig);
            ++n;
          }
        }
        std::printf(" %8.1f", std::sqrt(se / std::max(1, n)));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 6): error falls then rises along each\n"
      "row/column; the best cell sits at moderate chunk sizes and output\n"
      "caps near the true per-chunk occupancy.\n");
  return 0;
}
